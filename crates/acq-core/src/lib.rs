//! # acq-core
//!
//! The attributed community query (ACQ) of *Effective Community Search for
//! Large Attributed Graphs* (Fang et al., PVLDB 2016): problem definition,
//! the five query algorithms of the paper (`basic-g`, `basic-w`, `Inc-S`,
//! `Inc-T`, `Dec`), the two problem variants of Appendix G, and one unified
//! query surface — build a [`Request`], hand it to any [`Executor`]
//! (the owning [`Engine`] or the batched [`BatchEngine`]), read the
//! [`Response`].
//!
//! Given a graph `G`, a query vertex `q`, a degree bound `k` and a keyword set
//! `S ⊆ W(q)`, an **attributed community** is a connected subgraph containing
//! `q`, with minimum internal degree ≥ `k`, maximising the number of keywords
//! of `S` shared by *all* members (the AC-label).
//!
//! ```
//! use acq_graph::paper_figure3_graph;
//! use acq_core::{AcqAlgorithm, Engine, Executor, Request};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(paper_figure3_graph());
//! let engine = Engine::new(Arc::clone(&graph));
//! let q = graph.vertex_by_label("A").unwrap();
//!
//! // Default algorithm (Dec) with the default keyword set S = W(q).
//! let ac = engine.execute(&Request::community(q).k(2)).unwrap();
//! assert_eq!(ac.communities()[0].label_terms(&graph), vec!["x", "y"]);
//!
//! // Any of the paper's algorithms returns the same communities.
//! let same = engine
//!     .execute(&Request::community(q).k(2).algorithm(AcqAlgorithm::IncT))
//!     .unwrap();
//! assert_eq!(same.canonical(), ac.canonical());
//! ```

#![deny(missing_docs)]

pub mod algorithms;
pub mod common;
mod engine;
pub mod exec;
mod owned;
mod query;
mod request;
pub mod shard;
pub mod variants;

pub use algorithms::basic::{basic_g, basic_w};
pub use algorithms::dec::{dec, dec_with_miner};
pub use algorithms::incremental::{inc_s, inc_t};
pub use engine::AcqAlgorithm;
#[allow(deprecated)]
pub use engine::AcqEngine;
pub use exec::BatchEngine;
#[allow(deprecated)]
pub use exec::QueryBatch;
pub use owned::{Engine, EngineBuilder, UpdateReport, UpdateStrategy, DEFAULT_REBUILD_THRESHOLD};
pub use query::{AcqQuery, AcqResult, AttributedCommunity, QueryError, QueryStats};
pub use request::{ExecutionMeta, Executor, QuerySpec, Request, Response};
pub use shard::{ServingEngine, ShardStatus, ShardedEngine, ShardedEngineBuilder};
pub use variants::{
    basic_g_v1, basic_g_v2, basic_w_v1, basic_w_v2, sw, swt, Variant1Query, Variant2Query,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use acq_cltree::build_advanced;
    use acq_graph::{GraphBuilder, VertexId};
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Random attributed graphs with a small keyword universe so that keyword
    /// sharing actually happens.
    fn arb_graph() -> impl Strategy<Value = acq_graph::AttributedGraph> {
        (4usize..22).prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..90);
            let keywords = proptest::collection::vec(proptest::collection::vec(0u32..5, 0..4), n);
            (edges, keywords).prop_map(|(edges, kws)| {
                let mut b = GraphBuilder::new();
                for kw in &kws {
                    let terms: Vec<String> = kw.iter().map(|k| format!("kw{k}")).collect();
                    let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                    b.add_unlabeled_vertex(&refs);
                }
                for &(u, v) in &edges {
                    if u != v {
                        b.add_edge(VertexId(u), VertexId(v)).unwrap();
                    }
                }
                b.build()
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// All five algorithms (plus the two `*` ablations) return exactly the
        /// same set of communities for the same query.
        #[test]
        fn all_algorithms_agree(g in arb_graph(), q_raw in 0u32..22, k in 1usize..4) {
            let q = VertexId(q_raw % g.num_vertices() as u32);
            let engine = Engine::new(Arc::new(g));
            let request = Request::community(q).k(k);
            let reference = engine
                .execute(&request.clone().algorithm(AcqAlgorithm::BasicG))
                .unwrap()
                .canonical();
            for algorithm in AcqAlgorithm::ALL {
                let response = engine.execute(&request.clone().algorithm(algorithm)).unwrap();
                prop_assert_eq!(response.canonical(), reference.clone(), "{}", algorithm.name());
            }
        }

        /// Every returned community satisfies the three properties of
        /// Problem 1: connectivity, minimum degree, and the AC-label really is
        /// shared by every member and drawn from S ∩ W(q).
        #[test]
        fn results_satisfy_problem_definition(g in arb_graph(), q_raw in 0u32..22, k in 1usize..4) {
            let q = VertexId(q_raw % g.num_vertices() as u32);
            let engine = Engine::new(Arc::new(g.clone()));
            let query = AcqQuery::new(q, k);
            let result = engine.execute(&Request::community(q).k(k)).unwrap().result;
            let s = query.effective_keywords(&g);
            for community in &result.communities {
                // Contains q.
                prop_assert!(community.vertices.contains(&q));
                // Connected with min degree >= k (label-empty fallback is the
                // k-ĉore, which satisfies the same structural constraints).
                let subset = acq_graph::VertexSubset::from_iter(
                    g.num_vertices(),
                    community.vertices.iter().copied(),
                );
                prop_assert!(subset.is_connected(&g));
                for &v in &community.vertices {
                    prop_assert!(subset.degree_within(&g, v) >= k,
                        "vertex {:?} has degree {} < {}", v, subset.degree_within(&g, v), k);
                }
                // AC-label ⊆ S and shared by all members.
                for &kw in &community.label {
                    prop_assert!(s.contains(&kw));
                    for &v in &community.vertices {
                        prop_assert!(g.keyword_set(v).contains(kw));
                    }
                }
                prop_assert_eq!(community.label.len(), result.label_size);
            }
        }

        /// Maximality of the AC-label: no single keyword of S can be added to
        /// the winning label and still admit a valid community. (Checked by
        /// brute force against basic-w over the label ∪ {extra}.)
        #[test]
        fn label_is_maximal(g in arb_graph(), q_raw in 0u32..22, k in 1usize..3) {
            let q = VertexId(q_raw % g.num_vertices() as u32);
            let engine = Engine::new(Arc::new(g.clone()));
            let query = AcqQuery::new(q, k);
            let result = engine.execute(&Request::community(q).k(k)).unwrap().result;
            if result.is_empty() {
                return Ok(());
            }
            let s = query.effective_keywords(&g);
            let best = result.label_size;
            // Try every keyword set of size best+1 drawn from S that extends a
            // returned label: none may admit a community.
            for community in &result.communities {
                for &extra in &s {
                    if community.label.contains(&extra) {
                        continue;
                    }
                    let mut bigger = community.label.clone();
                    bigger.push(extra);
                    bigger.sort_unstable();
                    let probe = Request::community(q)
                        .k(k)
                        .keywords(bigger.iter().copied())
                        .algorithm(AcqAlgorithm::BasicW);
                    let probe_result = engine.execute(&probe).unwrap().result;
                    prop_assert!(
                        probe_result.label_size <= best,
                        "label {:?} of size {} beats reported maximum {}",
                        bigger, probe_result.label_size, best
                    );
                }
            }
        }

        /// Variant agreement: the three Variant 1 algorithms agree, as do the
        /// three Variant 2 algorithms.
        #[test]
        fn variant_algorithms_agree(g in arb_graph(), q_raw in 0u32..22, k in 1usize..4, theta in 0.0f64..1.0) {
            let q = VertexId(q_raw % g.num_vertices() as u32);
            let index = build_advanced(&g, true);
            let keywords: Vec<_> = g.keyword_set(q).iter().take(2).collect();
            let v1 = Variant1Query { vertex: q, k, keywords: keywords.clone() };
            let a = basic_g_v1(&g, &v1).canonical();
            prop_assert_eq!(basic_w_v1(&g, &v1).canonical(), a.clone());
            prop_assert_eq!(sw(&g, &index, &v1).canonical(), a);
            let v2 = Variant2Query { vertex: q, k, keywords, theta };
            let b = basic_g_v2(&g, &v2).canonical();
            prop_assert_eq!(basic_w_v2(&g, &v2).canonical(), b.clone());
            prop_assert_eq!(swt(&g, &index, &v2).canonical(), b);
        }
    }
}
