//! The ACQ problem variants of the paper's Appendix G.
//!
//! * **Variant 1** — the returned community must be a connected k-core
//!   containing `q` in which *every* member contains the entire user-supplied
//!   keyword set `S` (no maximality search). Algorithms: `basic-g-v1`
//!   (Algorithm 10), `basic-w-v1` (Algorithm 11) and the index-based `SW`
//!   (Algorithm 12).
//! * **Variant 2** — keyword cohesiveness is relaxed: every member must
//!   contain at least `⌈θ·|S|⌉` keywords of `S`, for a threshold
//!   `θ ∈ [0, 1]`. Algorithms: `basic-g-v2`, `basic-w-v2` and the index-based
//!   `SWT`.

use crate::common::{filter_by_keywords, verify_candidate};
use crate::query::{AcqResult, AttributedCommunity, QueryStats};
use acq_cltree::ClTree;
use acq_graph::{AttributedGraph, KeywordId, VertexId, VertexSubset};
use acq_kcore::peel_to_kcore_containing;

/// A Variant 1 query: the community must contain the full keyword set `S`.
#[derive(Debug, Clone)]
pub struct Variant1Query {
    /// The query vertex.
    pub vertex: VertexId,
    /// Minimum in-community degree.
    pub k: usize,
    /// The required keyword set (every member must contain all of it).
    pub keywords: Vec<KeywordId>,
}

/// A Variant 2 query: every member must contain at least `θ·|S|` keywords of `S`.
#[derive(Debug, Clone)]
pub struct Variant2Query {
    /// The query vertex.
    pub vertex: VertexId,
    /// Minimum in-community degree.
    pub k: usize,
    /// The reference keyword set.
    pub keywords: Vec<KeywordId>,
    /// Fraction of `keywords` each member must carry, in `[0, 1]`.
    pub theta: f64,
}

impl Variant2Query {
    /// The minimum number of keywords of `S` a member must carry:
    /// `⌈θ·|S|⌉`, clamped to at least 0 and at most `|S|`.
    pub fn required_matches(&self) -> usize {
        let raw = (self.theta * self.keywords.len() as f64).ceil();
        (raw.max(0.0) as usize).min(self.keywords.len())
    }
}

fn sorted(keywords: &[KeywordId]) -> Vec<KeywordId> {
    let mut v = keywords.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn single_community(
    label: Vec<KeywordId>,
    community: Option<VertexSubset>,
    stats: QueryStats,
) -> AcqResult {
    match community {
        Some(c) => AcqResult {
            label_size: label.len(),
            communities: vec![AttributedCommunity::new(label, c.sorted_members())],
            stats,
        },
        None => AcqResult::empty(stats),
    }
}

// ---------------------------------------------------------------------------
// Variant 1
// ---------------------------------------------------------------------------

/// `basic-g-v1` (Algorithm 10): find the k-ĉore containing `q` by peeling,
/// keep only the vertices containing `S`, then peel again.
pub fn basic_g_v1(graph: &AttributedGraph, query: &Variant1Query) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let full = VertexSubset::full(graph.num_vertices());
    let Some(kcore) = peel_to_kcore_containing(graph, &full, query.vertex, query.k) else {
        return AcqResult::empty(stats);
    };
    let pool = filter_by_keywords(graph, kcore.iter(), &s);
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(s, community, stats)
}

/// `basic-w-v1` (Algorithm 11): keyword filtering over the whole graph first.
pub fn basic_w_v1(graph: &AttributedGraph, query: &Variant1Query) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let pool = filter_by_keywords(graph, graph.vertices(), &s);
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(s, community, stats)
}

/// `SW` (Algorithm 12): locate the k-ĉore through the CL-tree, collect the
/// vertices containing `S` by intersecting inverted lists, then peel.
pub fn sw(graph: &AttributedGraph, index: &ClTree, query: &Variant1Query) -> AcqResult {
    sw_cached(graph, index, query, &crate::exec::IndexCache::disabled())
}

/// `SW` against a shared [`crate::exec::IndexCache`] (the batch-engine entry
/// point); byte-identical to [`sw`], the keyword pool is served from the
/// cache.
pub(crate) fn sw_cached(
    graph: &AttributedGraph,
    index: &ClTree,
    query: &Variant1Query,
    cache: &crate::exec::IndexCache,
) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let Some(node) = index.locate_core(query.vertex, query.k as u32) else {
        return AcqResult::empty(stats);
    };
    let pool = cache.keyword_pool(graph, index, node, query.k as u32, &s, true);
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(s, community, stats)
}

// ---------------------------------------------------------------------------
// Variant 2
// ---------------------------------------------------------------------------

fn matches_threshold(
    graph: &AttributedGraph,
    v: VertexId,
    s: &[KeywordId],
    required: usize,
) -> bool {
    graph.keyword_set(v).intersection_size(s) >= required
}

/// `basic-g-v2`: structure first, then the relaxed keyword constraint.
pub fn basic_g_v2(graph: &AttributedGraph, query: &Variant2Query) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let required = query.required_matches();
    let full = VertexSubset::full(graph.num_vertices());
    let Some(kcore) = peel_to_kcore_containing(graph, &full, query.vertex, query.k) else {
        return AcqResult::empty(stats);
    };
    let pool = VertexSubset::from_iter(
        graph.num_vertices(),
        kcore.iter().filter(|&v| matches_threshold(graph, v, &s, required)),
    );
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(Vec::new(), community, stats)
}

/// `basic-w-v2`: relaxed keyword filtering over the whole graph first.
pub fn basic_w_v2(graph: &AttributedGraph, query: &Variant2Query) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let required = query.required_matches();
    let pool = VertexSubset::from_iter(
        graph.num_vertices(),
        graph.vertices().filter(|&v| matches_threshold(graph, v, &s, required)),
    );
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(Vec::new(), community, stats)
}

/// `SWT` (search by keywords with threshold): the index-based Variant 2 solver.
pub fn swt(graph: &AttributedGraph, index: &ClTree, query: &Variant2Query) -> AcqResult {
    swt_cached(graph, index, query, &crate::exec::IndexCache::disabled())
}

/// `SWT` against a shared [`crate::exec::IndexCache`] (the batch-engine entry
/// point); byte-identical to [`swt`], core extraction is served from the
/// cache (the θ-dependent filter itself is too query-specific to cache).
pub(crate) fn swt_cached(
    graph: &AttributedGraph,
    index: &ClTree,
    query: &Variant2Query,
    cache: &crate::exec::IndexCache,
) -> AcqResult {
    let mut stats = QueryStats::default();
    let s = sorted(&query.keywords);
    let required = query.required_matches();
    let Some(node) = index.locate_core(query.vertex, query.k as u32) else {
        return AcqResult::empty(stats);
    };
    let pool = VertexSubset::from_iter(
        graph.num_vertices(),
        cache
            .subtree_vertices(index, node, query.k as u32)
            .iter()
            .copied()
            .filter(|&v| matches_threshold(graph, v, &s, required)),
    );
    let community = verify_candidate(graph, query.vertex, query.k, &pool, &mut stats);
    single_community(Vec::new(), community, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_cltree::build_advanced;
    use acq_graph::paper_figure3_graph;

    fn kw(graph: &AttributedGraph, terms: &[&str]) -> Vec<KeywordId> {
        terms.iter().map(|t| graph.dictionary().get(t).unwrap()).collect()
    }

    #[test]
    fn example7_variant1() {
        // Example 7: q=A, k=2, S={x} -> community {A,B,C,D}.
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let query = Variant1Query {
            vertex: g.vertex_by_label("A").unwrap(),
            k: 2,
            keywords: kw(&g, &["x"]),
        };
        for result in [basic_g_v1(&g, &query), basic_w_v1(&g, &query), sw(&g, &index, &query)] {
            assert_eq!(result.communities.len(), 1);
            assert_eq!(result.communities[0].member_names(&g), vec!["A", "B", "C", "D"]);
            assert_eq!(result.label_size, 1);
        }
    }

    #[test]
    fn example7_variant2() {
        // Example 7: q=A, k=2, S={x,y}, θ=0.5 -> community {A,B,C,D,E}
        // (every member carries at least one of x, y).
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let query = Variant2Query {
            vertex: g.vertex_by_label("A").unwrap(),
            k: 2,
            keywords: kw(&g, &["x", "y"]),
            theta: 0.5,
        };
        assert_eq!(query.required_matches(), 1);
        for result in [basic_g_v2(&g, &query), basic_w_v2(&g, &query), swt(&g, &index, &query)] {
            assert_eq!(result.communities.len(), 1);
            assert_eq!(result.communities[0].member_names(&g), vec!["A", "B", "C", "D", "E"]);
        }
    }

    #[test]
    fn variant1_with_unsatisfiable_keywords_is_empty() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        // No 2-core whose members all contain z.
        let query = Variant1Query {
            vertex: g.vertex_by_label("D").unwrap(),
            k: 2,
            keywords: kw(&g, &["z"]),
        };
        assert!(basic_g_v1(&g, &query).is_empty());
        assert!(basic_w_v1(&g, &query).is_empty());
        assert!(sw(&g, &index, &query).is_empty());
    }

    #[test]
    fn variant1_with_k_above_core_is_empty() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let query = Variant1Query {
            vertex: g.vertex_by_label("A").unwrap(),
            k: 4,
            keywords: kw(&g, &["x"]),
        };
        assert!(sw(&g, &index, &query).is_empty());
        assert!(basic_g_v1(&g, &query).is_empty());
    }

    #[test]
    fn variant2_theta_extremes() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let a = g.vertex_by_label("A").unwrap();
        // θ=0: no keyword constraint at all -> the full 2-ĉore {A,B,C,D,E}.
        let loose = Variant2Query { vertex: a, k: 2, keywords: kw(&g, &["x", "y"]), theta: 0.0 };
        assert_eq!(loose.required_matches(), 0);
        assert_eq!(swt(&g, &index, &loose).communities[0].len(), 5);
        // θ=1: equivalent to Variant 1 -> {A, C, D}.
        let strict = Variant2Query { vertex: a, k: 2, keywords: kw(&g, &["x", "y"]), theta: 1.0 };
        assert_eq!(strict.required_matches(), 2);
        let result = swt(&g, &index, &strict);
        assert_eq!(result.communities[0].member_names(&g), vec!["A", "C", "D"]);
        let v1 = Variant1Query { vertex: a, k: 2, keywords: kw(&g, &["x", "y"]) };
        assert_eq!(result.communities[0].vertices, sw(&g, &index, &v1).communities[0].vertices);
    }

    #[test]
    fn variant_algorithms_agree_across_the_graph() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let all_kw: Vec<Vec<KeywordId>> =
            vec![kw(&g, &["x"]), kw(&g, &["y"]), kw(&g, &["x", "y"]), kw(&g, &["y", "z"])];
        for label in ["A", "C", "D", "E", "H"] {
            let v = g.vertex_by_label(label).unwrap();
            for k in 1..=3usize {
                for keywords in &all_kw {
                    let q1 = Variant1Query { vertex: v, k, keywords: keywords.clone() };
                    let r_basic = basic_g_v1(&g, &q1).canonical();
                    assert_eq!(basic_w_v1(&g, &q1).canonical(), r_basic);
                    assert_eq!(sw(&g, &index, &q1).canonical(), r_basic);
                    for theta in [0.3, 0.6, 1.0] {
                        let q2 = Variant2Query { vertex: v, k, keywords: keywords.clone(), theta };
                        let r2 = basic_g_v2(&g, &q2).canonical();
                        assert_eq!(basic_w_v2(&g, &q2).canonical(), r2);
                        assert_eq!(swt(&g, &index, &q2).canonical(), r2);
                    }
                }
            }
        }
    }
}
