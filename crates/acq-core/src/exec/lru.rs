//! A small bounded least-recently-used map.
//!
//! The build environment is offline, so instead of pulling in the `lru` crate
//! this module implements the classic hash-map + intrusive doubly-linked-list
//! design in ~150 lines: `get` and `insert` are `O(1)` expected, and the list
//! links are slab indices rather than pointers, which keeps the code free of
//! `unsafe`.

use std::collections::HashMap;
use std::hash::Hash;

/// A slot in the recency list. `prev` points towards the most recently used
/// end, `next` towards the least recently used end. The value is `None` only
/// for slots parked on the free list (it is moved out during eviction).
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: Option<V>,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A bounded LRU cache: inserting beyond `capacity` evicts the least recently
/// used entry, and every `get` / `insert` marks its entry as most recent.
///
/// A capacity of 0 is the degenerate always-empty cache: nothing is ever
/// stored (used to represent "caching disabled" without a second code path).
///
/// ```
/// use acq_core::exec::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // refreshes "a"
/// cache.insert("c", 3);                  // evicts "b", the LRU entry
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: Option<usize>,
    /// Least recently used slot.
    tail: Option<usize>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: None,
            tail: None,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking the entry as most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.move_to_front(slot);
        self.slots[slot].value.as_ref()
    }

    /// Whether `key` is present, *without* touching recency (useful in tests).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Iterates over the live entries from **least** to **most** recently
    /// used, without touching recency. Re-inserting the yielded entries into
    /// a fresh cache in this order reproduces the original recency — which is
    /// exactly what the generation cache carry-over does.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        std::iter::successors(self.tail, |&slot| self.slots[slot].prev)
            .map(|slot| (&self.slots[slot].key, self.slots[slot].value.as_ref().expect("live")))
    }

    /// Inserts `key → value` as the most recently used entry. Returns the
    /// evicted least-recently-used pair when the insertion overflowed the
    /// capacity, `None` otherwise (including the capacity-0 cache, which
    /// stores nothing and evicts nothing).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = Some(value);
            self.move_to_front(slot);
            return None;
        }
        let evicted = if self.map.len() == self.capacity { self.evict_lru() } else { None };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] =
                    Slot { key: key.clone(), value: Some(value), prev: None, next: None };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value: Some(value),
                    prev: None,
                    next: None,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
        evicted
    }

    /// Unlinks the least recently used slot and returns its entry.
    fn evict_lru(&mut self) -> Option<(K, V)> {
        let tail = self.tail?;
        self.detach(tail);
        self.free.push(tail);
        let key = self.slots[tail].key.clone();
        self.map.remove(&key);
        let value = self.slots[tail].value.take().expect("live slots always hold a value");
        Some((key, value))
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head == Some(slot) {
            return;
        }
        self.detach(slot);
        self.attach_front(slot);
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
        self.slots[slot].prev = None;
        self.slots[slot].next = None;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = None;
        self.slots[slot].next = self.head;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(slot);
        }
        self.head = Some(slot);
        if self.tail.is_none() {
            self.tail = Some(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(3);
        assert!(cache.is_empty());
        for (k, v) in [(1, "one"), (2, "two"), (3, "three")] {
            assert!(cache.insert(k, v).is_none(), "no eviction below capacity");
        }
        // Touch 1 so that 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.insert(4, "four"), Some((2, "two")));
        assert!(!cache.contains(&2));
        assert!(cache.contains(&1) && cache.contains(&3) && cache.contains(&4));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.capacity(), 3);
    }

    #[test]
    fn reinsert_updates_value_and_recency_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert!(cache.insert("a", 10).is_none(), "overwrite is not an eviction");
        assert_eq!(cache.get(&"a"), Some(&10));
        // "b" is now LRU.
        assert_eq!(cache.insert("c", 3), Some(("b", 2)));
    }

    #[test]
    fn eviction_order_follows_access_order() {
        let mut cache = LruCache::new(2);
        cache.insert(1, ());
        cache.insert(2, ());
        cache.get(&1);
        cache.get(&2);
        cache.get(&1);
        assert_eq!(cache.insert(3, ()), Some((2, ())), "2 was least recently touched");
        assert_eq!(cache.insert(4, ()), Some((1, ())));
        assert_eq!(cache.insert(5, ()), Some((3, ())));
    }

    #[test]
    fn iter_walks_lru_to_mru_without_touching_recency() {
        let mut cache = LruCache::new(3);
        cache.insert(1, "a");
        cache.insert(2, "b");
        cache.insert(3, "c");
        cache.get(&1); // order is now 2 (LRU), 3, 1 (MRU)
        let keys: Vec<i32> = cache.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 1]);
        // Replaying into a fresh cache preserves eviction order.
        let mut replay = LruCache::new(3);
        for (k, v) in cache.iter() {
            replay.insert(*k, *v);
        }
        assert_eq!(replay.insert(4, "d"), Some((2, "b")), "2 is still the LRU entry");
    }

    /// The slab/list/map invariants a pointer-based LRU would need `unsafe`
    /// (and `// SAFETY:` obligations) to uphold, checked dynamically: the
    /// `prev`/`next` chains are exact mirrors, `map` and `free` partition
    /// the live slab, and every live slot holds a value.
    fn assert_structural_invariants(cache: &LruCache<u64, u64>) {
        let lru_to_mru: Vec<u64> = cache.iter().map(|(k, _)| *k).collect();
        assert_eq!(lru_to_mru.len(), cache.len(), "list length disagrees with the map");
        let mut mru_to_lru: Vec<u64> =
            std::iter::successors(cache.head, |&slot| cache.slots[slot].next)
                .map(|slot| cache.slots[slot].key)
                .collect();
        mru_to_lru.reverse();
        assert_eq!(lru_to_mru, mru_to_lru, "prev and next chains disagree");
        assert!(cache.len() <= cache.capacity(), "capacity bound violated");
        for (key, &slot) in &cache.map {
            assert_eq!(&cache.slots[slot].key, key, "map points at a slot with another key");
            assert!(cache.slots[slot].value.is_some(), "live slot lost its value");
            assert!(!cache.free.contains(&slot), "slot is both live and free");
        }
        for &slot in &cache.free {
            assert!(cache.slots[slot].value.is_none(), "freed slot still holds a value");
        }
        assert_eq!(
            cache.map.len() + cache.free.len(),
            cache.slots.len(),
            "map and free list must partition the slab"
        );
    }

    #[test]
    fn slab_list_and_map_stay_consistent_under_churn() {
        let mut cache = LruCache::new(4);
        for step in 0u64..500 {
            let key = (step * step + step / 3) % 11;
            if step % 3 == 0 {
                cache.get(&key);
            } else {
                cache.insert(key, step);
            }
            assert_structural_invariants(&cache);
        }
        assert_eq!(cache.len(), 4, "churn across 11 keys keeps a capacity-4 cache full");
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let mut cache = LruCache::new(0);
        assert!(cache.insert("a", 1).is_none());
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut cache = LruCache::new(1);
        assert!(cache.insert(1, "a").is_none());
        assert_eq!(cache.insert(2, "b"), Some((1, "a")));
        assert_eq!(cache.insert(3, "c"), Some((2, "b")));
        assert_eq!(cache.get(&3), Some(&"c"));
        assert_eq!(cache.len(), 1);
    }
}
