//! A minimal scoped worker pool for fanning a batch out over OS threads.
//!
//! The build environment is offline (no `rayon`), so this is the classic
//! atomic-counter work queue over [`std::thread::scope`]: workers repeatedly
//! claim the next unprocessed index, and every result is written into the
//! slot matching its input index — so the output order is always the input
//! order, no matter how the items are scheduled across threads.

use acq_sync::sync::atomic::{AtomicUsize, Ordering};
use acq_sync::sync::Mutex;

/// Resolves a configured worker count for a batch of `batch_len` items:
/// `0` means one worker per available core, and the count is always clamped
/// to both the item count and the available cores — workers beyond either
/// can only add spawn and contention cost, never throughput (this clamp is
/// what keeps an over-provisioned `threads` setting from regressing below
/// the single-threaded path on small hosts).
pub fn effective_threads(configured: usize, batch_len: usize) -> usize {
    let cores = acq_sync::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let configured = if configured == 0 { cores } else { configured.min(cores) };
    configured.min(batch_len.max(1))
}

/// Applies `f` to every item and returns the results **in input order**.
///
/// With `threads <= 1` (or fewer than two items) this degenerates to a plain
/// sequential map on the calling thread — no threads are spawned, which is
/// what makes single-threaded batch runs exactly equivalent to a query loop.
/// Worker panics propagate to the caller when the scope joins.
pub fn map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    acq_sync::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            let out = map_ordered(&items, threads, |_, &x| x * 3);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c", "d"];
        let out = map_ordered(&items, 4, |i, &s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = map_ordered::<u8, u8, _>(&[], 4, |_, &x| x);
        assert!(out.is_empty());
    }
}
