//! Batch query execution — the serving-shaped layer over the ACQ algorithms.
//!
//! The paper's evaluation (and any production deployment) runs *thousands* of
//! queries against one immutable graph + CL-tree index. Executing them
//! one-by-one through [`AcqEngine`](crate::AcqEngine) recomputes shared
//! per-graph state on every call; this module factors that work out:
//!
//! * the graph, the index and its core decomposition are computed **once**
//!   and shared immutably (`Arc`) across all queries and worker threads;
//! * pure index lookups — core extraction and candidate-subtree
//!   (keyword-checking) results — are memoised in a bounded LRU
//!   [`IndexCache`] keyed by `(node, k, keyword-set)`;
//! * a batch fans out over a [`std::thread`] worker pool, with results
//!   returned **in input order** regardless of scheduling.
//!
//! Caching and threading are invisible to results: a [`BatchEngine`] returns
//! byte-identical [`AcqResult`]s to a sequential [`AcqEngine`](crate::AcqEngine)
//! loop (a property-based test in this module proves it for every algorithm
//! and thread count).

mod cache;
mod lru;
pub mod pool;

pub use cache::{CacheKey, CacheKind, CacheStats, IndexCache};
pub use lru::LruCache;

use crate::engine::AcqAlgorithm;
use crate::query::{AcqQuery, AcqResult, QueryError};
use crate::request::{execute_on, Executor, Request, Response};
use crate::variants::{Variant1Query, Variant2Query};
use acq_cltree::{build_advanced, ClTree};
use acq_graph::AttributedGraph;
use acq_kcore::SharedDecomposition;
use acq_sync::sync::Arc;

/// Default LRU bound for the shared index cache (entries, not bytes; each
/// entry is one `Arc`'d vertex list or pool).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// An ordered collection of ACQ queries, each paired with the algorithm that
/// should answer it. Build one with [`push`](Self::push) /
/// [`push_with`](Self::push_with) or collect it from an iterator of
/// [`AcqQuery`]s (which assigns the default algorithm, `Dec`).
#[deprecated(
    since = "0.2.0",
    note = "build a `Vec<Request>` with the `Request` builder and hand it to `Executor::execute_batch`"
)]
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    items: Vec<(AcqQuery, AcqAlgorithm)>,
}

#[allow(deprecated)]
impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with space reserved for `n` queries.
    pub fn with_capacity(n: usize) -> Self {
        Self { items: Vec::with_capacity(n) }
    }

    /// Appends a query answered by the default algorithm (`Dec`).
    pub fn push(&mut self, query: AcqQuery) -> &mut Self {
        self.push_with(query, AcqAlgorithm::default())
    }

    /// Appends a query answered by an explicitly chosen algorithm.
    pub fn push_with(&mut self, query: AcqQuery, algorithm: AcqAlgorithm) -> &mut Self {
        self.items.push((query, algorithm));
        self
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The queries and their algorithms, in submission order.
    pub fn items(&self) -> &[(AcqQuery, AcqAlgorithm)] {
        &self.items
    }
}

#[allow(deprecated)]
impl FromIterator<AcqQuery> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = AcqQuery>>(iter: I) -> Self {
        Self { items: iter.into_iter().map(|q| (q, AcqAlgorithm::default())).collect() }
    }
}

#[allow(deprecated)]
impl FromIterator<(AcqQuery, AcqAlgorithm)> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = (AcqQuery, AcqAlgorithm)>>(iter: I) -> Self {
        Self { items: iter.into_iter().collect() }
    }
}

/// A multi-query ACQ engine: owns the graph and CL-tree index behind `Arc`s,
/// shares one core decomposition and one bounded LRU cache across all
/// queries, and fans batches out over a worker pool.
///
/// Unlike [`AcqEngine`](crate::AcqEngine) (which borrows its graph), a
/// `BatchEngine` is `'static`, `Send` and `Sync` — it can be stored in a
/// server, cloned-by-`Arc` and queried from many sessions at once.
///
/// The paper's Figure 3 quick-start, batched through the unified
/// [`Executor`] door:
///
/// ```
/// use acq_core::exec::BatchEngine;
/// use acq_core::{Executor, Request};
/// use acq_graph::paper_figure3_graph;
/// use acq_sync::sync::Arc;
///
/// let graph = Arc::new(paper_figure3_graph());
/// let engine = BatchEngine::new(Arc::clone(&graph)).with_threads(2);
///
/// // "For A and for B: find the community in which everyone has degree >= 2
/// //  and shares as many of the query vertex's keywords as possible."
/// let requests: Vec<Request> = ["A", "B"]
///     .iter()
///     .map(|label| Request::community(graph.vertex_by_label(label).unwrap()).k(2))
///     .collect();
///
/// let results = engine.execute_batch(&requests); // input order, regardless of threads
/// let ac = &results[0].as_ref().unwrap().communities()[0];
/// assert_eq!(ac.member_names(&graph), vec!["A", "C", "D"]);
/// assert_eq!(ac.label_terms(&graph), vec!["x", "y"]);
/// ```
#[derive(Debug)]
pub struct BatchEngine {
    graph: Arc<AttributedGraph>,
    index: Arc<ClTree>,
    decomposition: SharedDecomposition,
    cache: IndexCache,
    threads: usize,
}

impl BatchEngine {
    /// Builds the engine with a freshly constructed CL-tree (`advanced`
    /// builder, inverted lists enabled), the default cache capacity
    /// ([`DEFAULT_CACHE_CAPACITY`]) and one worker per available core.
    pub fn new(graph: Arc<AttributedGraph>) -> Self {
        let index = Arc::new(build_advanced(&graph, true));
        Self::with_index(graph, index)
    }

    /// Wraps an existing shared index (e.g. one that has been incrementally
    /// maintained, deserialised from disk, or already used by other engines).
    ///
    /// The index's core decomposition is copied once here into the
    /// [`SharedDecomposition`] handle; after construction every worker and
    /// every [`decomposition`](Self::decomposition) caller shares that one
    /// copy by pointer.
    pub fn with_index(graph: Arc<AttributedGraph>, index: Arc<ClTree>) -> Self {
        let decomposition = SharedDecomposition::new(index.decomposition().clone());
        Self {
            graph,
            index,
            decomposition,
            cache: IndexCache::with_capacity(DEFAULT_CACHE_CAPACITY),
            threads: 0,
        }
    }

    /// Sets the worker count. `0` (the default) means one worker per
    /// available core; `1` forces fully sequential execution on the calling
    /// thread.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds the shared index cache to `capacity` entries (0 disables
    /// caching). Resets the cache contents and counters.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = IndexCache::with_capacity(capacity);
        self
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<AttributedGraph> {
        &self.graph
    }

    /// The shared CL-tree index.
    pub fn index(&self) -> &Arc<ClTree> {
        &self.index
    }

    /// A cheap handle to the graph's core decomposition, computed once at
    /// construction and shareable with other components (workload selection,
    /// metrics, …) without copying.
    pub fn decomposition(&self) -> &SharedDecomposition {
        &self.decomposition
    }

    /// Counters of the shared index cache (hits, misses, evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs every query of the batch and returns the answers **in input
    /// order** — a thin shim over [`Executor::execute_batch`].
    #[allow(deprecated)]
    #[deprecated(
        since = "0.2.0",
        note = "build `Request`s with the builder and call `Executor::execute_batch`"
    )]
    pub fn run(&self, batch: &QueryBatch) -> Vec<Result<AcqResult, QueryError>> {
        let requests: Vec<Request> =
            batch.items.iter().map(|(query, alg)| Request::from_acq(query, *alg)).collect();
        strip_meta(self.execute_batch(&requests))
    }

    /// Convenience wrapper: runs a slice of queries with the default
    /// algorithm (`Dec`), preserving order.
    #[deprecated(
        since = "0.2.0",
        note = "build `Request`s with the builder and call `Executor::execute_batch`"
    )]
    pub fn run_queries(&self, queries: &[AcqQuery]) -> Vec<Result<AcqResult, QueryError>> {
        let requests: Vec<Request> =
            queries.iter().map(|q| Request::from_acq(q, AcqAlgorithm::default())).collect();
        strip_meta(self.execute_batch(&requests))
    }

    /// Runs a batch of Variant 1 queries (exact required keyword set, the
    /// `SW` algorithm), preserving order.
    #[deprecated(
        since = "0.2.0",
        note = "use `Request::community(v).k(..).exact_keywords(..)` with `Executor::execute_batch`"
    )]
    pub fn run_variant1(&self, queries: &[Variant1Query]) -> Vec<Result<AcqResult, QueryError>> {
        let requests: Vec<Request> = queries.iter().map(Request::from_variant1).collect();
        strip_meta(self.execute_batch(&requests))
    }

    /// Runs a batch of Variant 2 queries (threshold keyword constraint, the
    /// `SWT` algorithm), preserving order.
    #[deprecated(
        since = "0.2.0",
        note = "use `Request::community(v).k(..).keywords(..).threshold(..)` with `Executor::execute_batch`"
    )]
    pub fn run_variant2(&self, queries: &[Variant2Query]) -> Vec<Result<AcqResult, QueryError>> {
        let requests: Vec<Request> = queries.iter().map(Request::from_variant2).collect();
        strip_meta(self.execute_batch(&requests))
    }
}

/// Reduces unified responses to the bare results the deprecated entry points
/// used to return.
fn strip_meta(responses: Vec<Result<Response, QueryError>>) -> Vec<Result<AcqResult, QueryError>> {
    responses.into_iter().map(|r| r.map(|response| response.result)).collect()
}

impl Executor for BatchEngine {
    fn execute(&self, request: &Request) -> Result<Response, QueryError> {
        execute_on(&self.graph, &self.index, &self.cache, 0, request)
    }

    /// Fans the requests out over the engine's worker pool, answering **in
    /// input order**.
    fn execute_batch(&self, requests: &[Request]) -> Vec<Result<Response, QueryError>> {
        let workers = pool::effective_threads(self.threads, requests.len());
        pool::map_ordered(requests, workers, |_, request| {
            execute_on(&self.graph, &self.index, &self.cache, 0, request)
        })
    }
}

/// Shim tests: the deprecated `QueryBatch`/`run*` entry points must keep
/// returning byte-identical answers to the deprecated sequential `AcqEngine`
/// until both are removed together.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::AcqEngine;
    use acq_graph::{paper_figure3_graph, VertexId};

    fn figure3_engine() -> (Arc<AttributedGraph>, BatchEngine) {
        let graph = Arc::new(paper_figure3_graph());
        let engine = BatchEngine::new(Arc::clone(&graph));
        (graph, engine)
    }

    #[test]
    fn batch_matches_sequential_engine_on_figure3() {
        let (graph, engine) = figure3_engine();
        let sequential = AcqEngine::with_index(&graph, (*engine.index()).as_ref().clone());
        let mut batch = QueryBatch::new();
        for label in ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"] {
            let v = graph.vertex_by_label(label).unwrap();
            for k in 1..=3 {
                for algorithm in AcqAlgorithm::ALL {
                    batch.push_with(AcqQuery::new(v, k), algorithm);
                }
            }
        }
        for threads in [1, 4] {
            let runner = BatchEngine::with_index(Arc::clone(&graph), Arc::clone(engine.index()))
                .with_threads(threads);
            let results = runner.run(&batch);
            assert_eq!(results.len(), batch.len());
            for ((query, algorithm), result) in batch.items().iter().zip(&results) {
                let expected = sequential.query_with(query, *algorithm);
                assert_eq!(result, &expected, "threads={threads} {}", algorithm.name());
            }
        }
    }

    #[test]
    fn invalid_queries_error_in_place_without_poisoning_the_batch() {
        let (graph, engine) = figure3_engine();
        let a = graph.vertex_by_label("A").unwrap();
        let mut batch = QueryBatch::new();
        batch
            .push(AcqQuery::new(a, 2))
            .push(AcqQuery::new(VertexId(999), 2))
            .push(AcqQuery::new(a, 0));
        let results = engine.run(&batch);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(QueryError::UnknownVertex(VertexId(999))));
        assert_eq!(results[2], Err(QueryError::InvalidK));
    }

    #[test]
    fn variant_batches_match_sequential_engine() {
        let (graph, engine) = figure3_engine();
        let sequential = AcqEngine::with_index(&graph, (*engine.index()).as_ref().clone());
        let x = graph.dictionary().get("x").unwrap();
        let y = graph.dictionary().get("y").unwrap();
        let v1: Vec<Variant1Query> = ["A", "B", "C"]
            .iter()
            .map(|l| Variant1Query {
                vertex: graph.vertex_by_label(l).unwrap(),
                k: 2,
                keywords: vec![x],
            })
            .collect();
        let got = engine.run_variant1(&v1);
        for (query, result) in v1.iter().zip(&got) {
            assert_eq!(result, &sequential.query_variant1(query));
        }
        let v2: Vec<Variant2Query> = ["A", "D"]
            .iter()
            .map(|l| Variant2Query {
                vertex: graph.vertex_by_label(l).unwrap(),
                k: 2,
                keywords: vec![x, y],
                theta: 0.5,
            })
            .collect();
        let got = engine.run_variant2(&v2);
        for (query, result) in v2.iter().zip(&got) {
            assert_eq!(result, &sequential.query_variant2(query));
        }
    }

    #[test]
    fn repeated_queries_hit_the_shared_cache() {
        let (graph, engine) = figure3_engine();
        let a = graph.vertex_by_label("A").unwrap();
        let batch: QueryBatch = std::iter::repeat_with(|| AcqQuery::new(a, 2)).take(8).collect();
        let first = engine.run(&batch);
        let second = engine.run(&batch);
        assert_eq!(first, second, "cache hits do not change results");
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "identical queries must share cached index work: {stats:?}");
    }

    #[test]
    fn engine_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<BatchEngine>();
        assert_send_sync::<QueryBatch>();
    }

    #[test]
    fn run_queries_uses_default_algorithm() {
        let (graph, engine) = figure3_engine();
        let a = graph.vertex_by_label("A").unwrap();
        let results = engine.run_queries(&[AcqQuery::new(a, 2)]);
        let sequential = AcqEngine::new(&graph);
        assert_eq!(results[0], sequential.query(&AcqQuery::new(a, 2)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, engine) = figure3_engine();
        assert!(engine.run(&QueryBatch::new()).is_empty());
        assert!(QueryBatch::new().is_empty());
        assert_eq!(QueryBatch::with_capacity(4).len(), 0);
    }
}

/// Shim proptests: random-graph equivalence of the deprecated batch entry
/// points against the deprecated sequential engine. The *new* API's
/// cross-executor equivalence proptest lives in
/// `tests/property_equivalence.rs`.
#[cfg(test)]
#[allow(deprecated)]
mod proptests {
    use super::*;
    use crate::AcqEngine;
    use acq_graph::{GraphBuilder, VertexId};
    use proptest::prelude::*;

    /// Random attributed graphs with a small keyword universe (mirrors the
    /// strategy of the crate-level algorithm-equivalence proptests).
    fn arb_graph() -> impl Strategy<Value = AttributedGraph> {
        (4usize..20).prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..80);
            let keywords = proptest::collection::vec(proptest::collection::vec(0u32..5, 0..4), n);
            (edges, keywords).prop_map(|(edges, kws)| {
                let mut b = GraphBuilder::new();
                for kw in &kws {
                    let terms: Vec<String> = kw.iter().map(|k| format!("kw{k}")).collect();
                    let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                    b.add_unlabeled_vertex(&refs);
                }
                for &(u, v) in &edges {
                    if u != v {
                        b.add_edge(VertexId(u), VertexId(v)).unwrap();
                    }
                }
                b.build()
            })
        })
    }

    /// A random batch: query vertices, degree bounds and algorithm picks.
    fn arb_batch() -> impl Strategy<Value = Vec<(u32, usize, usize)>> {
        proptest::collection::vec((0u32..20, 1usize..4, 0usize..AcqAlgorithm::ALL.len()), 1..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tentpole equivalence property: for random graphs, batches and
        /// thread counts (including 1), the batch engine returns
        /// byte-identical `AcqResult`s — communities, label size *and* work
        /// counters — to a sequential `AcqEngine::query_with` loop. A
        /// deliberately tiny cache keeps the LRU evicting throughout.
        #[test]
        fn batch_equals_sequential_loop(g in arb_graph(), raw in arb_batch(), threads in 1usize..5) {
            let graph = Arc::new(g);
            let sequential = AcqEngine::new(&graph);
            let mut batch = QueryBatch::with_capacity(raw.len());
            for &(q_raw, k, alg) in &raw {
                let q = VertexId(q_raw % graph.num_vertices() as u32);
                batch.push_with(AcqQuery::new(q, k), AcqAlgorithm::ALL[alg]);
            }
            let engine = BatchEngine::new(Arc::clone(&graph))
                .with_threads(threads)
                .with_cache_capacity(3);
            let results = engine.run(&batch);
            prop_assert_eq!(results.len(), batch.len());
            for ((query, algorithm), result) in batch.items().iter().zip(&results) {
                let expected = sequential.query_with(query, *algorithm);
                prop_assert_eq!(result, &expected,
                    "threads={} algorithm={}", threads, algorithm.name());
            }
        }

        /// Same property for the default-algorithm path and a warm cache: two
        /// consecutive runs of one batch agree with each other and with the
        /// sequential loop.
        #[test]
        fn warm_cache_stays_equivalent(g in arb_graph(), raw in arb_batch()) {
            let graph = Arc::new(g);
            let sequential = AcqEngine::new(&graph);
            let queries: Vec<AcqQuery> = raw
                .iter()
                .map(|&(q_raw, k, _)| {
                    AcqQuery::new(VertexId(q_raw % graph.num_vertices() as u32), k)
                })
                .collect();
            let engine = BatchEngine::new(Arc::clone(&graph)).with_threads(2);
            let cold = engine.run_queries(&queries);
            let warm = engine.run_queries(&queries);
            prop_assert_eq!(&cold, &warm, "a warm cache must not change answers");
            for (query, result) in queries.iter().zip(&cold) {
                prop_assert_eq!(result, &sequential.query(query));
            }
        }
    }
}
