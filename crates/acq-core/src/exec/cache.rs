//! The shared per-index result cache used by batch execution.
//!
//! Every CL-tree query algorithm spends its time in two pure primitives:
//!
//! * **core extraction** — materialising the vertex set of the subtree that
//!   [`locate_core`](acq_cltree::ClTree::locate_core) returned (the k-ĉore
//!   containing the query vertex);
//! * **candidate-subtree lookup** — collecting the subtree vertices that
//!   carry a candidate keyword set (the paper's *keyword-checking*).
//!
//! Both depend only on the immutable index, the degree bound `k` and the
//! keyword set, so their results can be shared across every query of a batch
//! (and across batches) through a bounded LRU. Because the cached values are
//! *exactly* the vectors/subsets the uncached code path would have produced —
//! same contents, same order — caching is invisible to query results: the
//! batch engine's output is byte-identical to the sequential engine's.

use crate::exec::lru::LruCache;
use acq_cltree::{ClTree, NodeId};
use acq_graph::{AttributedGraph, KeywordId, VertexId, VertexSubset};
use acq_sync::sync::atomic::{AtomicU64, Ordering};
use acq_sync::sync::{Arc, Mutex};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Cache key: which CL-tree subtree, which degree bound, which keyword set.
///
/// `node` must be part of the key — two query vertices with the same `(k, S)`
/// can live in different ĉores — while `kind` keeps core-extraction and
/// keyword-pool entries apart even when they agree on every other field
/// (a keyword pool can legitimately have an empty keyword set). `inverted`
/// records whether a pool was produced through the inverted lists or by the
/// `*`-ablation subtree scan, so the two code paths never serve each other's
/// entries (their vertex orders may differ).
///
/// `k` never changes the computed value (the subtree of a node is fixed), so
/// keying on it trades some cross-`k` reuse for the `(k, keyword-set)` shape
/// the serving layer reasons about; collapsing compressed levels into one
/// entry is tracked as a cache-policy item in `ROADMAP.md`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which kind of result the entry holds.
    pub kind: CacheKind,
    /// Root of the subtree the result was computed from.
    pub node: NodeId,
    /// The query's minimum-degree bound `k`.
    pub k: u32,
    /// Sorted candidate keyword set; empty for core extraction.
    pub keywords: Vec<KeywordId>,
    /// Whether inverted lists were used to compute the entry (always `false`
    /// for core extraction).
    pub inverted: bool,
}

/// The kind of result a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// A subtree vertex list (core extraction).
    Core,
    /// A keyword-filtered vertex pool (candidate subtree).
    Pool,
}

/// A cached value: either a subtree vertex list (core extraction) or a
/// keyword-filtered vertex pool (candidate subtree), both behind `Arc` so a
/// hit is a pointer copy.
#[derive(Debug, Clone)]
enum CacheValue {
    Vertices(Arc<Vec<VertexId>>),
    Pool(Arc<VertexSubset>),
}

/// Point-in-time counters describing how a cache has been used.
///
/// Serialisable so a serving front-end can export the counters verbatim
/// (see the `Metrics` frame of `acq-server` and `docs/PROTOCOL.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute their result.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries carried over from the previous generation's cache at swap
    /// time (0 unless the cache was seeded by the live-update pipeline's
    /// carry-over — see `Engine::apply_updates`).
    pub carried: u64,
    /// Entries of the previous generation dropped at swap time because a
    /// delta touched their CL-tree node (or the skeleton was rebuilt).
    pub dropped: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Capacity at or above which the cache shards its entries over
/// [`MAX_SEGMENTS`] independently locked LRUs. Below the threshold a single
/// segment keeps exact global-LRU semantics (a handful of entries split eight
/// ways would evict erratically and gain nothing from extra locks).
pub const SEGMENT_CAPACITY_THRESHOLD: usize = 64;

/// Number of lock segments used by large caches.
pub const MAX_SEGMENTS: usize = 8;

/// A bounded, thread-safe cache for core-extraction and candidate-subtree
/// results, shared by every worker of a [`BatchEngine`](crate::exec::BatchEngine).
///
/// # Lock segmentation
///
/// At serving capacities (≥ `SEGMENT_CAPACITY_THRESHOLD`) the entries are
/// sharded by key hash over `MAX_SEGMENTS` independently locked LRUs, so
/// concurrent batch workers contend only when they touch the same segment —
/// this is what fixed the batch-4-threads > batch-1-thread inversion the
/// single global mutex used to cause (every worker of every in-flight query
/// serialised on one lock). Each segment enforces its share of the capacity;
/// recency is exact *within* a segment, approximate globally, which changes
/// nothing about result bytes (the cache only ever returns values the
/// uncached path would have computed).
///
/// The disabled cache ([`IndexCache::disabled`]) computes everything directly
/// and stores nothing; it is what the one-shot [`AcqEngine`](crate::AcqEngine)
/// entry points use, so sequential queries pay no synchronisation cost.
#[derive(Debug)]
pub struct IndexCache {
    /// Hash-sharded segments; empty = caching disabled (compute directly,
    /// store nothing). Small capacities use a single segment, preserving
    /// exact global-LRU eviction order.
    segments: Vec<Mutex<LruCache<CacheKey, CacheValue>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    carried: AtomicU64,
    dropped: AtomicU64,
}

impl IndexCache {
    /// A cache bounded to `capacity` entries. A capacity of 0 behaves like
    /// [`IndexCache::disabled`].
    pub fn with_capacity(capacity: usize) -> Self {
        let segments = if capacity == 0 {
            Vec::new()
        } else if capacity < SEGMENT_CAPACITY_THRESHOLD {
            vec![Mutex::new(LruCache::new(capacity))]
        } else {
            (0..MAX_SEGMENTS)
                .map(|i| {
                    let share = capacity / MAX_SEGMENTS + usize::from(i < capacity % MAX_SEGMENTS);
                    Mutex::new(LruCache::new(share))
                })
                .collect()
        };
        Self {
            segments,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            carried: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The no-op cache: every lookup computes directly and nothing is stored.
    pub const fn disabled() -> Self {
        Self {
            segments: Vec::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            carried: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The segment owning `key`, or `None` when disabled. Single-segment
    /// caches skip the hash.
    fn segment(&self, key: &CacheKey) -> Option<&Mutex<LruCache<CacheKey, CacheValue>>> {
        match self.segments.len() {
            0 => None,
            1 => Some(&self.segments[0]),
            n => {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut hasher);
                Some(&self.segments[(hasher.finish() as usize) % n])
            }
        }
    }

    /// Seeds this (freshly created) cache with the entries of `old` whose key
    /// passes `keep`, preserving their relative recency; entries failing the
    /// filter are dropped. Records the carried/dropped counts in
    /// [`stats`](Self::stats) and returns them.
    ///
    /// This is the swap-aware carry-over of the live-update pipeline: when a
    /// delta batch leaves the CL-tree skeleton untouched (stable node ids),
    /// every entry whose node no delta staled is still byte-identical to what
    /// the new generation would recompute, so it moves over instead of being
    /// thrown away with the generation.
    pub(crate) fn carry_from(
        &self,
        old: &IndexCache,
        mut keep: impl FnMut(&CacheKey) -> bool,
    ) -> (u64, u64) {
        let mut carried = 0u64;
        let mut dropped = 0u64;
        if self.segments.is_empty() {
            dropped = old.len() as u64;
        } else {
            // Walk every old segment LRU→MRU and re-insert through the new
            // cache's own segment map: when old and new share a layout (the
            // swap path always builds the successor with the same capacity),
            // each key lands in the same segment it came from and per-segment
            // recency is reproduced exactly.
            for old_segment in &old.segments {
                let old_guard = old_segment.lock().expect("cache mutex poisoned");
                for (key, value) in old_guard.iter() {
                    if keep(key) {
                        self.segment(key)
                            .expect("segments checked non-empty")
                            .lock()
                            .expect("cache mutex poisoned")
                            .insert(key.clone(), value.clone());
                        carried += 1;
                    } else {
                        dropped += 1;
                    }
                }
            }
        }
        self.carried.store(carried, Ordering::Relaxed);
        self.dropped.store(dropped, Ordering::Relaxed);
        (carried, dropped)
    }

    /// Whether this cache actually stores entries.
    pub fn is_enabled(&self) -> bool {
        !self.segments.is_empty()
    }

    /// A snapshot of the hit/miss/eviction and swap carry-over counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            carried: self.carried.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries across all segments (0 when disabled).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.lock().expect("cache mutex poisoned").len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// **Core extraction**: the vertex list of the subtree rooted at `node`
    /// (the k-ĉore a query located), cached under `(node, k, ∅)`.
    ///
    /// The returned vector is exactly
    /// [`ClTree::subtree_vertices`]`(node)` — same contents, same order — so
    /// callers behave identically on hits and misses.
    pub fn subtree_vertices(&self, index: &ClTree, node: NodeId, k: u32) -> Arc<Vec<VertexId>> {
        let key =
            CacheKey { kind: CacheKind::Core, node, k, keywords: Vec::new(), inverted: false };
        if let Some(CacheValue::Vertices(v)) = self.lookup(&key) {
            return v;
        }
        let computed = Arc::new(index.subtree_vertices(node));
        self.store(key, CacheValue::Vertices(Arc::clone(&computed)));
        computed
    }

    /// **Candidate subtree** (keyword-checking): the pool of subtree vertices
    /// carrying every keyword of `keywords`, cached under
    /// `(node, k, keywords)`.
    ///
    /// `use_inverted_lists` selects the paper's inverted-list intersection or
    /// the `*`-ablation subtree scan, exactly like the uncached
    /// implementations in [`crate::algorithms`].
    pub fn keyword_pool(
        &self,
        graph: &AttributedGraph,
        index: &ClTree,
        node: NodeId,
        k: u32,
        keywords: &[KeywordId],
        use_inverted_lists: bool,
    ) -> Arc<VertexSubset> {
        let inverted = use_inverted_lists && index.has_inverted_lists();
        let key =
            CacheKey { kind: CacheKind::Pool, node, k, keywords: keywords.to_vec(), inverted };
        if let Some(CacheValue::Pool(p)) = self.lookup(&key) {
            return p;
        }
        let vertices = if inverted {
            index.vertices_with_keywords_under(node, keywords)
        } else {
            index.vertices_with_keywords_under_scan(graph, node, keywords)
        };
        let pool = Arc::new(VertexSubset::from_iter(graph.num_vertices(), vertices));
        self.store(key, CacheValue::Pool(Arc::clone(&pool)));
        pool
    }

    /// Records the swap-time drop count on a cache that was **not** seeded by
    /// [`carry_from`](Self::carry_from) — the rebuild paths of the update
    /// pipeline drop every entry of the predecessor cache, and
    /// [`stats`](Self::stats) must say so.
    pub(crate) fn note_swap_drop(&self, dropped: u64) {
        self.dropped.store(dropped, Ordering::Relaxed);
    }

    fn lookup(&self, key: &CacheKey) -> Option<CacheValue> {
        let segment = self.segment(key)?;
        let found = segment.lock().expect("cache mutex poisoned").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: CacheKey, value: CacheValue) {
        if let Some(segment) = self.segment(&key) {
            if segment.lock().expect("cache mutex poisoned").insert(key, value).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_cltree::build_advanced;
    use acq_graph::paper_figure3_graph;

    #[test]
    fn cached_subtree_equals_direct_navigation() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let cache = IndexCache::with_capacity(16);
        let a = g.vertex_by_label("A").unwrap();
        let node = index.locate_core(a, 2).unwrap();
        let first = cache.subtree_vertices(&index, node, 2);
        assert_eq!(*first, index.subtree_vertices(node), "identical contents and order");
        let second = cache.subtree_vertices(&index, node, 2);
        assert!(Arc::ptr_eq(&first, &second), "second lookup is a cache hit");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn cached_pool_matches_both_lookup_paths() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let cache = IndexCache::with_capacity(16);
        let x = g.dictionary().get("x").unwrap();
        let root = index.root();
        let via_lists = cache.keyword_pool(&g, &index, root, 1, &[x], true);
        let via_scan = cache.keyword_pool(&g, &index, root, 1, &[x], false);
        assert_eq!(via_lists.sorted_members(), via_scan.sorted_members());
        assert_eq!(cache.len(), 2, "the two code paths cache separately");
    }

    #[test]
    fn disabled_cache_computes_but_never_stores() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let cache = IndexCache::disabled();
        assert!(!cache.is_enabled());
        let node = index.root();
        let first = cache.subtree_vertices(&index, node, 1);
        let second = cache.subtree_vertices(&index, node, 1);
        assert_eq!(*first, *second);
        assert!(!Arc::ptr_eq(&first, &second), "nothing was cached");
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn empty_keyword_pool_does_not_collide_with_core_entry() {
        // A keyword pool with an empty keyword set shares node/k/keywords
        // with the core-extraction entry; the `kind` discriminant must keep
        // them apart (regression: they used to overwrite each other, and the
        // cross-kind lookup was miscounted as a hit).
        let g = paper_figure3_graph();
        let index = build_advanced(&g, false); // no inverted lists
        let cache = IndexCache::with_capacity(16);
        let node = index.root();
        let core = cache.subtree_vertices(&index, node, 1);
        let pool = cache.keyword_pool(&g, &index, node, 1, &[], false);
        assert_eq!(cache.len(), 2, "core and empty-keyword pool are distinct entries");
        assert_eq!(cache.stats().hits, 0, "kinds never serve each other");
        // Both stay retrievable as genuine hits.
        assert!(Arc::ptr_eq(&core, &cache.subtree_vertices(&index, node, 1)));
        assert!(Arc::ptr_eq(&pool, &cache.keyword_pool(&g, &index, node, 1, &[], false)));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn carry_from_moves_only_kept_entries_and_counts_both() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let old = IndexCache::with_capacity(16);
        let a = g.vertex_by_label("A").unwrap();
        let node2 = index.locate_core(a, 2).unwrap();
        let node3 = index.locate_core(a, 3).unwrap();
        let kept = old.subtree_vertices(&index, node2, 2);
        old.subtree_vertices(&index, node3, 3);
        assert_eq!(old.len(), 2);

        let fresh = IndexCache::with_capacity(16);
        let (carried, dropped) = fresh.carry_from(&old, |key| key.node == node2);
        assert_eq!((carried, dropped), (1, 1));
        assert_eq!(fresh.len(), 1);
        let stats = fresh.stats();
        assert_eq!((stats.carried, stats.dropped), (1, 1));
        // The carried entry is served as a genuine hit, pointer-identical.
        let hit = fresh.subtree_vertices(&index, node2, 2);
        assert!(Arc::ptr_eq(&kept, &hit), "carried entry survives by pointer");
        assert_eq!(fresh.stats().hits, 1);
        // Carrying into a disabled cache just counts drops.
        let disabled = IndexCache::disabled();
        let (carried, dropped) = disabled.carry_from(&old, |_| true);
        assert_eq!((carried, dropped), (0, 2));
    }

    #[test]
    fn carry_from_preserves_recency_so_eviction_hits_the_cold_entry() {
        // Regression pin: `carry_from` must reproduce the old cache's
        // LRU→MRU order in the new cache, not just its contents. If the
        // iteration order regressed (e.g. to insertion order), the first
        // post-swap eviction would throw out the *hottest* entry.
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let a = g.vertex_by_label("A").unwrap();
        let node1 = index.locate_core(a, 1).unwrap();
        let node2 = index.locate_core(a, 2).unwrap();
        let node3 = index.locate_core(a, 3).unwrap();

        let old = IndexCache::with_capacity(2);
        let hot = old.subtree_vertices(&index, node1, 1);
        let cold = old.subtree_vertices(&index, node2, 2);
        // Touch the k=1 entry so recency is (k=2 cold, k=1 hot) — the
        // reverse of insertion order, which is what makes the pin bite.
        assert!(Arc::ptr_eq(&hot, &old.subtree_vertices(&index, node1, 1)));

        let fresh = IndexCache::with_capacity(2);
        let (carried, dropped) = fresh.carry_from(&old, |_| true);
        assert_eq!((carried, dropped), (2, 0));

        // One new entry through the full cache must evict the cold one.
        fresh.subtree_vertices(&index, node3, 3);
        assert_eq!(fresh.stats().evictions, 1);
        assert!(
            Arc::ptr_eq(&hot, &fresh.subtree_vertices(&index, node1, 1)),
            "the recently used entry must survive the post-carry eviction"
        );
        let recomputed = fresh.subtree_vertices(&index, node2, 2);
        assert!(
            !Arc::ptr_eq(&cold, &recomputed),
            "the least recently used entry is the one that was evicted"
        );
    }

    #[test]
    fn segmented_cache_preserves_contents_and_counters() {
        // A serving-sized cache shards over MAX_SEGMENTS locks; entries must
        // stay individually retrievable, counters must aggregate across
        // segments, and carry into an identically sized successor must keep
        // every entry hot (pointer-identical hits).
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let cache = IndexCache::with_capacity(SEGMENT_CAPACITY_THRESHOLD);
        let a = g.vertex_by_label("A").unwrap();
        let x = g.dictionary().get("x").unwrap();
        let y = g.dictionary().get("y").unwrap();
        let mut entries = Vec::new();
        for k in 1..=3u32 {
            let node = index.locate_core(a, k).unwrap();
            entries.push((node, k));
            cache.subtree_vertices(&index, node, k);
            cache.keyword_pool(&g, &index, node, k, &[x], true);
            cache.keyword_pool(&g, &index, node, k, &[x, y], true);
        }
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.stats().misses, 9);
        for &(node, k) in &entries {
            cache.subtree_vertices(&index, node, k);
            cache.keyword_pool(&g, &index, node, k, &[x], true);
            cache.keyword_pool(&g, &index, node, k, &[x, y], true);
        }
        assert_eq!(cache.stats().hits, 9, "every entry is retrievable across segments");

        let fresh = IndexCache::with_capacity(SEGMENT_CAPACITY_THRESHOLD);
        let (carried, dropped) = fresh.carry_from(&cache, |_| true);
        assert_eq!((carried, dropped), (9, 0));
        assert_eq!(fresh.len(), 9);
        let before = fresh.stats().hits;
        for &(node, k) in &entries {
            let direct = index.subtree_vertices(node);
            assert_eq!(*fresh.subtree_vertices(&index, node, k), direct);
        }
        assert_eq!(fresh.stats().hits, before + entries.len() as u64);
    }

    #[test]
    fn lru_bound_evicts_under_pressure() {
        let g = paper_figure3_graph();
        let index = build_advanced(&g, true);
        let cache = IndexCache::with_capacity(2);
        // Three distinct keys through a capacity-2 cache must evict.
        for k in 1..=3u32 {
            let a = g.vertex_by_label("A").unwrap();
            let node = index.locate_core(a, k).unwrap();
            cache.subtree_vertices(&index, node, k);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }
}
