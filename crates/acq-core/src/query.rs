//! Query descriptions, results and errors for the ACQ problem.

use acq_graph::{AttributedGraph, KeywordId, VertexId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An attributed community query (Problem 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcqQuery {
    /// The query vertex `q`.
    pub vertex: VertexId,
    /// Minimum degree `k` every community member must have inside the
    /// community (structure cohesiveness).
    pub k: usize,
    /// The keyword set `S ⊆ W(q)` the AC-label is drawn from. `None` means
    /// the paper's default `S = W(q)`.
    pub keywords: Option<Vec<KeywordId>>,
}

impl AcqQuery {
    /// Query with the default keyword set `S = W(q)`.
    pub fn new(vertex: VertexId, k: usize) -> Self {
        Self { vertex, k, keywords: None }
    }

    /// Query with an explicit keyword set `S`.
    pub fn with_keywords(vertex: VertexId, k: usize, keywords: Vec<KeywordId>) -> Self {
        Self { vertex, k, keywords: Some(keywords) }
    }

    /// Query whose keyword set is given as strings, resolved through the
    /// graph's dictionary. Unknown keywords are ignored (they cannot be shared
    /// by anybody).
    pub fn with_keyword_terms(
        graph: &AttributedGraph,
        vertex: VertexId,
        k: usize,
        terms: &[&str],
    ) -> Self {
        let keywords = terms.iter().filter_map(|t| graph.dictionary().get(t)).collect();
        Self { vertex, k, keywords: Some(keywords) }
    }

    /// Resolves the effective query keyword set: the explicit `S` intersected
    /// with `W(q)`, or `W(q)` itself if no `S` was given. The paper requires
    /// `S ⊆ W(q)`; keywords the query vertex does not carry can never be in an
    /// AC-label (the AC contains `q`), so they are dropped here — this mirrors
    /// Algorithm 2's "skip those keywords which are in S but not in W(q)".
    pub fn effective_keywords(&self, graph: &AttributedGraph) -> Vec<KeywordId> {
        let wq = graph.keyword_set(self.vertex);
        match &self.keywords {
            None => wq.iter().collect(),
            Some(s) => {
                let mut out: Vec<KeywordId> =
                    s.iter().copied().filter(|&kw| wq.contains(kw)).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// Validates the query against a graph.
    pub fn validate(&self, graph: &AttributedGraph) -> Result<(), QueryError> {
        if !graph.contains_vertex(self.vertex) {
            return Err(QueryError::UnknownVertex(self.vertex));
        }
        if self.k == 0 {
            return Err(QueryError::InvalidK);
        }
        Ok(())
    }
}

/// One attributed community: a vertex set plus the AC-label shared by all of
/// its members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributedCommunity {
    /// The AC-label `L(Gq, S)`: keywords of `S` shared by every member,
    /// sorted ascending. Empty when the query fell back to the plain k-ĉore.
    pub label: Vec<KeywordId>,
    /// The community members, sorted ascending.
    pub vertices: Vec<VertexId>,
}

impl AttributedCommunity {
    /// Creates a community, normalising the orderings.
    pub fn new(mut label: Vec<KeywordId>, mut vertices: Vec<VertexId>) -> Self {
        label.sort_unstable();
        label.dedup();
        vertices.sort_unstable();
        vertices.dedup();
        Self { label, vertices }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the community has no members (never produced by the query
    /// algorithms; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Resolves the AC-label to keyword strings.
    pub fn label_terms<'a>(&'a self, graph: &'a AttributedGraph) -> Vec<&'a str> {
        self.label.iter().filter_map(|&kw| graph.dictionary().term(kw)).collect()
    }

    /// Resolves the member labels (falling back to the numeric id).
    pub fn member_names(&self, graph: &AttributedGraph) -> Vec<String> {
        self.vertices
            .iter()
            .map(|&v| graph.label(v).map(str::to_owned).unwrap_or_else(|| v.to_string()))
            .collect()
    }
}

/// Counters describing how much work a query did; used by the efficiency
/// experiments and by tests asserting that pruning actually prunes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Candidate keyword sets whose community existence was checked.
    pub candidates_verified: usize,
    /// Candidate keyword sets skipped by the Lemma 3 edge-count bound.
    pub pruned_by_lemma3: usize,
    /// Number of qualified keyword sets discovered across all sizes.
    pub qualified_sets: usize,
}

/// The answer to an ACQ: all attributed communities whose AC-label has the
/// maximum size, plus work counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcqResult {
    /// The communities, one per maximal qualified keyword set. When no
    /// keyword is shared at all this contains the plain k-ĉore with an empty
    /// label (the paper's fallback); when even that does not exist it is
    /// empty.
    pub communities: Vec<AttributedCommunity>,
    /// Size of the AC-label of the returned communities (0 for the fallback).
    pub label_size: usize,
    /// Work counters.
    pub stats: QueryStats,
}

impl AcqResult {
    /// The empty result (no community satisfies the structure constraint).
    pub fn empty(stats: QueryStats) -> Self {
        Self { communities: Vec::new(), label_size: 0, stats }
    }

    /// Whether any community was found.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Communities sorted by label then vertices — a canonical form used to
    /// compare the output of different algorithms.
    pub fn canonical(&self) -> Vec<(Vec<KeywordId>, Vec<VertexId>)> {
        let mut out: Vec<(Vec<KeywordId>, Vec<VertexId>)> =
            self.communities.iter().map(|c| (c.label.clone(), c.vertices.clone())).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Errors raised by request validation and the query algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query vertex does not exist in the graph.
    UnknownVertex(VertexId),
    /// `k` must be at least 1 (a 0-core carries no structural constraint).
    InvalidK,
    /// An explicitly supplied keyword id is not in the graph's dictionary.
    UnknownKeyword(KeywordId),
    /// A Variant 2 threshold must lie in `[0, 1]`.
    InvalidTheta,
    /// The shard that owned this request's vertex died (its worker panicked)
    /// before producing an answer. Requests routed to other shards of the
    /// same batch are unaffected — a shard failure is typed and scoped, never
    /// a hang (see [`ShardedEngine`](crate::ShardedEngine)).
    ShardFailed(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownVertex(v) => write!(f, "query vertex {v} is not in the graph"),
            QueryError::InvalidK => write!(f, "the minimum degree k must be at least 1"),
            QueryError::UnknownKeyword(kw) => {
                write!(f, "keyword id {kw:?} is not in the graph's dictionary")
            }
            QueryError::InvalidTheta => write!(f, "the threshold θ must lie in [0, 1]"),
            QueryError::ShardFailed(shard) => {
                write!(f, "shard {shard} failed while answering the request")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_graph::paper_figure3_graph;

    #[test]
    fn effective_keywords_defaults_to_wq() {
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        let q = AcqQuery::new(a, 2);
        let eff = q.effective_keywords(&g);
        assert_eq!(eff.len(), 3, "A carries w, x, y");
    }

    #[test]
    fn effective_keywords_intersects_with_wq() {
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        let q = AcqQuery::with_keyword_terms(&g, a, 2, &["x", "z", "nonexistent"]);
        let eff = q.effective_keywords(&g);
        // A does not carry z; unknown keywords are dropped.
        assert_eq!(eff, vec![g.dictionary().get("x").unwrap()]);
    }

    #[test]
    fn validation_rejects_bad_queries() {
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        assert!(AcqQuery::new(a, 2).validate(&g).is_ok());
        assert_eq!(AcqQuery::new(a, 0).validate(&g), Err(QueryError::InvalidK));
        let missing = VertexId(99);
        assert_eq!(AcqQuery::new(missing, 2).validate(&g), Err(QueryError::UnknownVertex(missing)));
        assert!(QueryError::InvalidK.to_string().contains("at least 1"));
    }

    #[test]
    fn community_accessors() {
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        let c = g.vertex_by_label("C").unwrap();
        let x = g.dictionary().get("x").unwrap();
        let community = AttributedCommunity::new(vec![x], vec![c, a, c]);
        assert_eq!(community.len(), 2);
        assert!(!community.is_empty());
        assert_eq!(community.vertices, vec![a, c]);
        assert_eq!(community.label_terms(&g), vec!["x"]);
        assert_eq!(community.member_names(&g), vec!["A", "C"]);
    }

    #[test]
    fn result_canonical_form_deduplicates() {
        let r = AcqResult {
            communities: vec![
                AttributedCommunity::new(vec![KeywordId(1)], vec![VertexId(0)]),
                AttributedCommunity::new(vec![KeywordId(1)], vec![VertexId(0)]),
            ],
            label_size: 1,
            stats: QueryStats::default(),
        };
        assert_eq!(r.canonical().len(), 1);
        assert!(AcqResult::empty(QueryStats::default()).is_empty());
    }
}
