//! Model checks for the scatter-gather protocol: gathered answers never
//! leave input order, and a concurrent writer can only ever make a reader
//! see each shard's old answer or its new answer — never a torn mix, never
//! a swap between slots.
//!
//! Under `--cfg acq_model` these explore every bounded interleaving of the
//! shard workers and a writer; in normal builds they run once on real
//! threads as smoke tests. (The companion guarantee — a *panicking* shard
//! worker surfaces as the typed `QueryError::ShardFailed` on exactly its own
//! slots rather than hanging the gather — is exercised by the scatter-gather
//! unit tests in `acq-core/src/shard.rs`, because the model scheduler
//! treats any real panic as a failed schedule by design.)

use acq_core::{Executor, Request, ShardedEngine};
use acq_graph::{AttributedGraph, GraphBuilder, GraphDelta, KeywordId, VertexId};
use acq_sync::model::model;
use acq_sync::sync::Arc;
use acq_sync::thread;

/// Two triangles: `{0, 1, 2}` all carrying `x`, `{3, 4, 5}` all carrying
/// `y` — one component (and thus one shard) per triangle.
fn two_triangles() -> (Arc<AttributedGraph>, KeywordId, KeywordId) {
    let mut b = GraphBuilder::new();
    for _ in 0..3 {
        b.add_unlabeled_vertex(&["x"]);
    }
    for _ in 0..3 {
        b.add_unlabeled_vertex(&["y"]);
    }
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(VertexId(u), VertexId(v)).unwrap();
    }
    let g = b.build();
    let x = g.dictionary().get("x").unwrap();
    let y = g.dictionary().get("y").unwrap();
    (Arc::new(g), x, y)
}

/// Scatter-gather never reorders: while a writer strips `x` from vertex 2
/// (shrinking the first triangle's answer from `{0,1,2}` to nothing — a
/// 2-core of two vertices cannot exist), a two-shard batch must still
/// answer slot 0 with vertex 0's community (old or new, never torn) and
/// slot 1 with the untouched second triangle, under every interleaving of
/// the two shard workers against the writer.
#[test]
fn gathered_answers_keep_input_order_under_concurrent_updates() {
    model(|| {
        let (graph, x, y) = two_triangles();
        let engine = Arc::new(
            ShardedEngine::builder(Arc::clone(&graph)).num_shards(2).cache_capacity(0).build(),
        );
        let requests = vec![
            Request::community(VertexId(0)).k(2).exact_keywords([x]),
            Request::community(VertexId(3)).k(2).exact_keywords([y]),
        ];

        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                engine
                    .apply_updates(&[GraphDelta::remove_keyword(VertexId(2), "x")])
                    .expect("apply");
            })
        };

        let answers = engine.execute_batch(&requests);
        writer.join().expect("writer");

        assert_eq!(answers.len(), 2);
        // Slot 0 belongs to vertex 0's request: its answer is exactly the
        // old community or exactly the new (empty) one.
        let slot0 = answers[0].as_ref().expect("slot 0 answers");
        let old = vec![VertexId(0), VertexId(1), VertexId(2)];
        match slot0.result.communities.as_slice() {
            [] => {}
            [community] => assert_eq!(community.vertices, old, "torn first-triangle answer"),
            more => panic!("unexpected communities: {more:?}"),
        }
        assert!(
            slot0.meta.generation == 1 || slot0.meta.generation == 2,
            "generation stamp must be a published one, got {}",
            slot0.meta.generation
        );
        // Slot 1 belongs to vertex 3's request — the writer never touches
        // that shard, so any reordering or slot mix-up is immediately
        // visible as the wrong community here.
        let slot1 = answers[1].as_ref().expect("slot 1 answers");
        assert_eq!(slot1.result.communities.len(), 1);
        assert_eq!(
            slot1.result.communities[0].vertices,
            vec![VertexId(3), VertexId(4), VertexId(5)],
            "slot 1 must hold vertex 3's community under every interleaving"
        );
    });
}

/// A repartition (cross-shard edge insert) concurrent with a reader: the
/// reader sees the old two-shard state or the new merged state, and its
/// single-slot answer always belongs to its own request.
#[test]
fn concurrent_repartition_yields_old_or_new_answers() {
    model(|| {
        let (graph, x, _y) = two_triangles();
        let engine = Arc::new(
            ShardedEngine::builder(Arc::clone(&graph)).num_shards(2).cache_capacity(0).build(),
        );

        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                engine
                    .apply_updates(&[GraphDelta::insert_edge(VertexId(2), VertexId(3))])
                    .expect("apply");
            })
        };

        // The merge does not change this answer (vertex 3 carries no `x`),
        // so old and new state agree — any torn read would stand out.
        let response = engine
            .execute(&Request::community(VertexId(0)).k(2).exact_keywords([x]))
            .expect("query");
        writer.join().expect("writer");
        assert_eq!(response.result.communities.len(), 1);
        assert_eq!(
            response.result.communities[0].vertices,
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(engine.num_shards(), 2, "shard count survives a repartition");
        assert_eq!(engine.generation(), 2);
    });
}
