//! The sharding contract, property-checked: a [`ShardedEngine`] is
//! observationally **byte-identical** to a single [`Engine`] over the same
//! graph — same communities, same stats counters, same generation stamps,
//! same errors, in the same order — for arbitrary graphs, any shard count,
//! and arbitrary mixed query/update sequences (including cross-shard edge
//! insertions that force a repartition, and update batches that fail
//! validation half-way through).

use acq_core::{Engine, Executor, Request, ShardedEngine};
use acq_graph::{AttributedGraph, GraphBuilder, GraphDelta, VertexId};
use proptest::prelude::*;
use std::sync::Arc;

/// Random attributed graphs with a small keyword universe (so AC-labels
/// actually form) and an edge density low enough to leave several connected
/// components (so sharding has something to split).
fn arb_graph() -> impl Strategy<Value = AttributedGraph> {
    (6usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..30);
        let keywords = proptest::collection::vec(proptest::collection::vec(0u32..5, 0..4), n);
        (edges, keywords).prop_map(|(edges, kws)| {
            let mut b = GraphBuilder::new();
            for kw in &kws {
                let terms: Vec<String> = kw.iter().map(|k| format!("kw{k}")).collect();
                let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                b.add_unlabeled_vertex(&refs);
            }
            for &(u, v) in &edges {
                if u != v {
                    b.add_edge(VertexId(u), VertexId(v)).unwrap();
                }
            }
            b.build()
        })
    })
}

/// An abstract update op; materialised against the evolving vertex count so
/// most deltas are valid, while a tail of the id space stays deliberately
/// out of range to exercise identical validation failures on both engines.
#[derive(Debug, Clone)]
struct Op {
    kind: u8,
    a: u32,
    b: u32,
    kw: u32,
}

fn arb_ops() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..5, 0u32..64, 0u32..64, 0u32..7).prop_map(|(kind, a, b, kw)| Op {
                kind,
                a,
                b,
                kw,
            }),
            1..5,
        ),
        0..5,
    )
}

/// Turns abstract ops into deltas. `n` tracks the vertex count as the batch
/// inserts vertices, matching the evolving-n validation rule; ids are taken
/// mod `n + 2` so roughly one in `n` deltas names an unknown vertex.
fn materialise(ops: &[Op], mut n: u32) -> Vec<GraphDelta> {
    let mut deltas = Vec::with_capacity(ops.len());
    for op in ops {
        let span = n + 2;
        let u = VertexId(op.a % span);
        let v = VertexId(op.b % span);
        let term = format!("kw{}", op.kw);
        match op.kind {
            0 => deltas.push(GraphDelta::insert_edge(u, v)),
            1 => deltas.push(GraphDelta::remove_edge(u, v)),
            2 => deltas.push(GraphDelta::add_keyword(u, &term)),
            3 => deltas.push(GraphDelta::remove_keyword(u, &term)),
            _ => {
                deltas.push(GraphDelta::insert_vertex(None, &[&term]));
                n += 1;
            }
        }
    }
    deltas
}

/// Asserts every observable of a query matches between the two engines:
/// result payload (communities, label size, stats counters), the generation
/// stamp, and errors.
fn assert_query_identical(sharded: &ShardedEngine, single: &Engine, request: &Request) {
    let got = sharded.execute(request);
    let want = single.execute(request);
    match (got, want) {
        (Ok(got), Ok(want)) => {
            assert_eq!(got.result, want.result, "query {:?}", request.vertex);
            assert_eq!(got.meta.generation, want.meta.generation);
        }
        (Err(got), Err(want)) => assert_eq!(got, want),
        (got, want) => panic!("answer kinds diverged: {got:?} vs {want:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pure queries: every vertex, every shard count, identical answers —
    /// both one at a time and as one scattered batch (which must also come
    /// back in input order).
    #[test]
    fn sharded_queries_match_single_engine(
        g in arb_graph(),
        num_shards in 1usize..8,
        k in 1usize..4,
    ) {
        let graph = Arc::new(g);
        let sharded = ShardedEngine::new(Arc::clone(&graph), num_shards);
        let single = Engine::new(Arc::clone(&graph));
        let mut requests: Vec<Request> = (0..graph.num_vertices())
            .map(|v| Request::community(VertexId(v as u32)).k(k))
            .collect();
        // An unknown vertex and a k=0 sprinkled in: errors must be identical
        // and must not disturb their neighbours' slots.
        requests.insert(requests.len() / 2, Request::community(VertexId(10_000)).k(k));
        requests.push(Request::community(VertexId(0)).k(0));

        for request in &requests {
            assert_query_identical(&sharded, &single, request);
        }
        let got = sharded.execute_batch(&requests);
        let want = single.execute_batch(&requests);
        prop_assert_eq!(got.len(), want.len());
        for (got, want) in got.into_iter().zip(want) {
            match (got, want) {
                (Ok(got), Ok(want)) => {
                    prop_assert_eq!(got.result, want.result);
                    prop_assert_eq!(got.meta.generation, want.meta.generation);
                }
                (Err(got), Err(want)) => prop_assert_eq!(got, want),
                (got, want) => panic!("batch slots diverged: {got:?} vs {want:?}"),
            }
        }
    }

    /// Mixed query/update sequences: after every update batch — valid or
    /// not, same-shard or component-merging — reports, errors and all
    /// subsequent answers stay identical across generations.
    #[test]
    fn sharded_updates_match_single_engine(
        g in arb_graph(),
        num_shards in 1usize..8,
        batches in arb_ops(),
    ) {
        let graph = Arc::new(g);
        let sharded = ShardedEngine::new(Arc::clone(&graph), num_shards);
        let single = Engine::new(Arc::clone(&graph));
        for ops in &batches {
            let n = sharded.graph().num_vertices() as u32;
            prop_assert_eq!(n, single.graph().num_vertices() as u32);
            let deltas = materialise(ops, n);
            let got = sharded.apply_updates(&deltas);
            let want = single.apply_updates(&deltas);
            match (got, want) {
                (Ok(got), Ok(want)) => {
                    prop_assert_eq!(got.generation, want.generation);
                    prop_assert_eq!(got.deltas_applied, want.deltas_applied);
                }
                (Err(got), Err(want)) => prop_assert_eq!(got, want),
                (got, want) => panic!("update outcomes diverged: {got:?} vs {want:?}"),
            }
            prop_assert_eq!(sharded.generation(), single.generation());
            // The mirrors must agree exactly — vertex counts, edges and
            // dictionary assignments all feed the query comparison below.
            let mirror = sharded.graph();
            prop_assert_eq!(mirror.num_vertices(), single.graph().num_vertices());
            prop_assert_eq!(mirror.num_edges(), single.graph().num_edges());
            for v in 0..mirror.num_vertices() {
                assert_query_identical(
                    &sharded,
                    &single,
                    &Request::community(VertexId(v as u32)).k(2),
                );
            }
        }
    }
}
