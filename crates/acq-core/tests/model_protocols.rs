//! Model checks for the engine's generation-swap and cache carry-over
//! protocols (invariants (a) and (b) of `docs/CONCURRENCY.md`).
//!
//! Under `--cfg acq_model` these explore every bounded interleaving of a
//! writer applying deltas against a reader executing queries; in normal
//! builds they run once on real threads as smoke tests. All synchronisation
//! the engine does goes through `acq-sync`, so the scheduler sees every
//! lock acquisition, publish, and cache operation as a yield point.

use acq_core::{Engine, Executor, Request};
use acq_graph::{AttributedGraph, GraphBuilder, GraphDelta, KeywordId, VertexId};
use acq_sync::model::model;
use acq_sync::sync::Arc;
use acq_sync::thread;

/// A path `0 — 1 — 2` where every vertex carries the keyword `x`.
fn x_path() -> (Arc<AttributedGraph>, KeywordId) {
    let mut b = GraphBuilder::new();
    let v0 = b.add_unlabeled_vertex(&["x"]);
    let v1 = b.add_unlabeled_vertex(&["x"]);
    let v2 = b.add_unlabeled_vertex(&["x"]);
    b.add_edge(v0, v1).unwrap();
    b.add_edge(v1, v2).unwrap();
    let g = b.build();
    let x = g.dictionary().get("x").unwrap();
    (Arc::new(g), x)
}

/// The query and delta both tests revolve around: ask for the exact-keyword
/// community of vertex 0, while a writer strips `x` from vertex 2 — which
/// shrinks the answer from `{0, 1, 2}` to `{0, 1}`.
fn query_and_delta(x: KeywordId) -> (Request, Vec<GraphDelta>) {
    let request = Request::community(VertexId(0)).k(1).exact_keywords([x]);
    let deltas = vec![GraphDelta::remove_keyword(VertexId(2), "x")];
    (request, deltas)
}

/// The canonical answer a single-generation engine gives, optionally after
/// applying `deltas` first. Runs single-threaded, so it adds scheduler
/// steps but no branching inside a model run.
fn reference_answer(
    graph: &Arc<AttributedGraph>,
    request: &Request,
    deltas: &[GraphDelta],
) -> Vec<(Vec<KeywordId>, Vec<VertexId>)> {
    let engine = Engine::builder(Arc::clone(graph)).cache_capacity(0).threads(1).build();
    if !deltas.is_empty() {
        engine.apply_updates(deltas).unwrap();
    }
    engine.execute(request).unwrap().canonical()
}

/// Invariant (a): a query never observes a half-published generation. Every
/// response must be *exactly* the old generation's answer or *exactly* the
/// new one's — generation number and community must agree. If `publish`
/// were split into two observable steps (or the reader's snapshot were not
/// atomic), some interleaving would pair the new generation number with the
/// old answer and this test would fail with a replayable seed.
#[test]
fn reader_never_observes_a_half_published_generation() {
    model(|| {
        let (graph, x) = x_path();
        let (request, deltas) = query_and_delta(x);
        let before = reference_answer(&graph, &request, &[]);
        let after = reference_answer(&graph, &request, &deltas);
        assert_ne!(before, after, "the delta must change the answer for the test to bite");

        let engine = Arc::new(Engine::builder(graph).cache_capacity(0).threads(1).build());
        let base_generation = engine.execute(&request).unwrap().meta.generation;

        let writer = {
            let engine = Arc::clone(&engine);
            let deltas = deltas.clone();
            thread::spawn(move || {
                engine.apply_updates(&deltas).unwrap();
            })
        };

        let response = engine.execute(&request).unwrap();
        let got = response.canonical();
        let generation = response.meta.generation;
        assert!(
            (generation == base_generation && got == before)
                || (generation == base_generation + 1 && got == after),
            "torn generation observed: generation {generation} answered {got:?}",
        );

        writer.join().unwrap();

        let settled = engine.execute(&request).unwrap();
        assert_eq!(settled.meta.generation, base_generation + 1);
        assert_eq!(settled.canonical(), after);
    });
}

/// Invariant (b): cache carry-over never resurrects a staled entry. The
/// first execute warms the keyword-pool cache with an entry that includes
/// vertex 2; the update strips `x` from vertex 2, so any generation built
/// after it must not serve that pool again. A concurrent reader may see the
/// old or the new answer — never a mix — and once the writer has joined,
/// the answer must match a from-scratch engine exactly.
#[test]
fn cache_carry_over_never_resurrects_a_staled_entry() {
    model(|| {
        let (graph, x) = x_path();
        let (request, deltas) = query_and_delta(x);
        let before = reference_answer(&graph, &request, &[]);
        let after = reference_answer(&graph, &request, &deltas);

        let engine = Arc::new(Engine::builder(graph).cache_capacity(8).threads(1).build());
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.canonical(), before, "warm-up runs against the base generation");

        let writer = {
            let engine = Arc::clone(&engine);
            let deltas = deltas.clone();
            thread::spawn(move || {
                engine.apply_updates(&deltas).unwrap();
            })
        };

        let concurrent = engine.execute(&request).unwrap().canonical();
        assert!(
            concurrent == before || concurrent == after,
            "concurrent reader saw a mixed answer: {concurrent:?}",
        );

        writer.join().unwrap();

        let settled = engine.execute(&request).unwrap().canonical();
        assert_eq!(
            settled, after,
            "a staled cache entry survived the swap and resurfaced after the update",
        );
    });
}
