//! Operational counters for the serving layer.
//!
//! The quality measures in the crate root describe *communities*; this module
//! describes the *service* returning them. [`MetricsSnapshot`] is the
//! point-in-time shape an `acq-server` answers a `Metrics` frame with: the
//! server's own frame/connection/admission counters, the engine's
//! per-generation index-cache counters, and the last live-update report. It
//! is a plain serde-able value — no atomics, no references — so it crosses
//! the wire as JSON unchanged and renders as a flat plain-text dump
//! ([`MetricsSnapshot::render_text`]) for operators without a JSON tool at
//! hand (see `docs/OPERATIONS.md`, "Reading the metrics dump").

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Frame, connection and admission counters owned by the server itself.
///
/// All counters are cumulative since server start except
/// `connections_open`, which is a gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCounters {
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Connections currently open (gauge).
    pub connections_open: u64,
    /// Frames decoded successfully (any kind).
    pub frames_received: u64,
    /// Frames written back (responses, errors, pongs).
    pub frames_sent: u64,
    /// Query frames answered with a `QueryOk` response.
    pub queries_served: u64,
    /// Query frames answered with an error frame (invalid request).
    pub query_errors: u64,
    /// `execute_batch` calls issued by connection workers — `queries_served /
    /// batches_executed` is the realised per-connection batching factor.
    pub batches_executed: u64,
    /// Largest single batch handed to `execute_batch`.
    pub max_batch: u64,
    /// Update frames applied successfully by the transactor.
    pub updates_applied: u64,
    /// Graph deltas applied across all update frames (no-ops excluded).
    pub deltas_applied: u64,
    /// Update frames rejected with an error frame (invalid delta).
    pub update_errors: u64,
    /// Frames rejected before dispatch: malformed payloads, oversize or
    /// truncated frames, unsupported versions, unknown kinds.
    pub protocol_errors: u64,
    /// Queries rejected with a `backpressure` error because the global
    /// in-flight bound or a per-connection queue bound was hit.
    pub admission_rejections: u64,
    /// Connections reaped by the socket read timeout — idle or slow-loris
    /// peers that held a socket without completing a frame.
    pub timeouts: u64,
    /// Requests shed with `deadline-exceeded` because their `deadline_ms`
    /// budget expired while they waited in a queue.
    pub deadline_shed: u64,
    /// Retried updates whose idempotency token was already applied: the
    /// cached `UpdateOk` was replayed instead of re-applying the batch.
    pub dedup_hits: u64,
}

/// The engine's per-generation index-cache counters, mirrored from
/// `acq_core::exec::CacheStats` so this crate stays dependency-light.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute their result.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries carried over from the previous generation at swap time.
    pub carried: u64,
    /// Entries of the previous generation dropped at swap time.
    pub dropped: u64,
}

impl CacheCounters {
    /// Fraction of lookups answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What the most recent live update did, mirrored from
/// `acq_core::UpdateReport` (the strategy is carried as its name string).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateCounters {
    /// The generation the update published.
    pub generation: u64,
    /// Deltas that actually changed the graph.
    pub deltas_applied: u64,
    /// Maintenance path taken (`IncrementalStableSkeleton`,
    /// `IncrementalRebuiltSkeleton` or `FullRebuild`).
    pub strategy: String,
    /// Subcore vertices the incremental kernels examined.
    pub subcore_touched: u64,
    /// `subcore_touched` over the pre-update vertex count.
    pub touched_fraction: f64,
    /// Cache entries carried into the new generation.
    pub cache_carried: u64,
    /// Cache entries dropped at the swap.
    pub cache_dropped: u64,
}

/// Counters of the durability layer (delta log + snapshot compaction),
/// mirrored from `acq_durable::DurabilityStats` so this crate stays
/// dependency-light. Present only when the server runs a durable engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityCounters {
    /// Record bytes appended (and fsynced) to the delta log since open.
    pub log_bytes_appended: u64,
    /// Records appended to the delta log since open.
    pub log_records_appended: u64,
    /// Log records replayed into the engine at open.
    pub records_replayed: u64,
    /// Trailing log bytes truncated as torn or corrupt at open.
    pub recovery_truncated_bytes: u64,
    /// Recovery actions that discarded data (log truncations plus discarded
    /// snapshots).
    pub recovery_truncations: u64,
    /// Completed snapshot compactions since open.
    pub compactions: u64,
    /// Compaction attempts that failed (the log stays authoritative).
    pub compaction_failures: u64,
    /// Wall-clock duration of the last completed compaction, in µs.
    pub last_compaction_micros: u64,
    /// Size of the current snapshot file in bytes.
    pub snapshot_bytes: u64,
}

/// One shard of a sharded engine, mirrored from `acq_core::ShardStatus` so
/// this crate stays dependency-light. Present only when the server runs a
/// sharded engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCounters {
    /// The shard index.
    pub shard: u64,
    /// Vertices owned by the shard.
    pub vertices: u64,
    /// The shard engine's own generation number (bumped only by updates that
    /// touched this shard; the top-level `generation` is the logical one).
    pub generation: u64,
    /// The shard engine's index-cache counters.
    pub cache: CacheCounters,
}

/// Everything a `Metrics` frame reports: server counters, engine cache
/// counters, the published generation number, the last update (if any), the
/// durability counters (if the server is durable), and per-shard counters
/// (if the engine is sharded).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Frame/connection/admission counters of the server.
    pub server: ServerCounters,
    /// Index-cache counters of the currently published generation (summed
    /// across shards on a sharded engine).
    pub cache: CacheCounters,
    /// The currently published graph generation number.
    pub generation: u64,
    /// The most recent transactor update, if one has been applied.
    pub last_update: Option<UpdateCounters>,
    /// Delta-log and compaction counters; `None` on a volatile server.
    pub durability: Option<DurabilityCounters>,
    /// Per-shard counters in shard order; empty on an unsharded engine (the
    /// text dump omits shard lines entirely in that case).
    pub shards: Vec<ShardCounters>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a flat `name value` plain-text dump, one
    /// counter per line, in a stable order — the format operators `grep` and
    /// dashboards scrape (see `docs/OPERATIONS.md`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let s = &self.server;
        for (name, value) in [
            ("acq_connections_accepted", s.connections_accepted),
            ("acq_connections_open", s.connections_open),
            ("acq_frames_received", s.frames_received),
            ("acq_frames_sent", s.frames_sent),
            ("acq_queries_served", s.queries_served),
            ("acq_query_errors", s.query_errors),
            ("acq_batches_executed", s.batches_executed),
            ("acq_max_batch", s.max_batch),
            ("acq_updates_applied", s.updates_applied),
            ("acq_deltas_applied", s.deltas_applied),
            ("acq_update_errors", s.update_errors),
            ("acq_protocol_errors", s.protocol_errors),
            ("acq_admission_rejections", s.admission_rejections),
            ("acq_timeouts", s.timeouts),
            ("acq_deadline_shed", s.deadline_shed),
            ("acq_dedup_hits", s.dedup_hits),
            ("acq_cache_hits", self.cache.hits),
            ("acq_cache_misses", self.cache.misses),
            ("acq_cache_evictions", self.cache.evictions),
            ("acq_cache_carried", self.cache.carried),
            ("acq_cache_dropped", self.cache.dropped),
            ("acq_generation", self.generation),
        ] {
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "acq_cache_hit_rate {:.4}", self.cache.hit_rate());
        if let Some(u) = &self.last_update {
            let _ = writeln!(out, "acq_last_update_generation {}", u.generation);
            let _ = writeln!(out, "acq_last_update_deltas_applied {}", u.deltas_applied);
            let _ = writeln!(out, "acq_last_update_strategy {}", u.strategy);
            let _ = writeln!(out, "acq_last_update_subcore_touched {}", u.subcore_touched);
            let _ = writeln!(out, "acq_last_update_touched_fraction {:.4}", u.touched_fraction);
            let _ = writeln!(out, "acq_last_update_cache_carried {}", u.cache_carried);
            let _ = writeln!(out, "acq_last_update_cache_dropped {}", u.cache_dropped);
        }
        if let Some(d) = &self.durability {
            for (name, value) in [
                ("acq_log_bytes_appended", d.log_bytes_appended),
                ("acq_log_records_appended", d.log_records_appended),
                ("acq_log_records_replayed", d.records_replayed),
                ("acq_recovery_truncated_bytes", d.recovery_truncated_bytes),
                ("acq_recovery_truncations", d.recovery_truncations),
                ("acq_compactions", d.compactions),
                ("acq_compaction_failures", d.compaction_failures),
                ("acq_last_compaction_micros", d.last_compaction_micros),
                ("acq_snapshot_bytes", d.snapshot_bytes),
            ] {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        if !self.shards.is_empty() {
            let _ = writeln!(out, "acq_shards {}", self.shards.len());
            for sh in &self.shards {
                let i = sh.shard;
                let _ = writeln!(out, "acq_shard_{i}_vertices {}", sh.vertices);
                let _ = writeln!(out, "acq_shard_{i}_generation {}", sh.generation);
                let _ = writeln!(out, "acq_shard_{i}_cache_hits {}", sh.cache.hits);
                let _ = writeln!(out, "acq_shard_{i}_cache_misses {}", sh.cache.misses);
                let _ = writeln!(out, "acq_shard_{i}_cache_evictions {}", sh.cache.evictions);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            server: ServerCounters {
                connections_accepted: 3,
                connections_open: 1,
                frames_received: 40,
                frames_sent: 41,
                queries_served: 30,
                query_errors: 2,
                batches_executed: 10,
                max_batch: 8,
                updates_applied: 4,
                deltas_applied: 9,
                update_errors: 1,
                protocol_errors: 2,
                admission_rejections: 5,
                timeouts: 2,
                deadline_shed: 3,
                dedup_hits: 6,
            },
            cache: CacheCounters { hits: 20, misses: 10, evictions: 0, carried: 4, dropped: 1 },
            generation: 5,
            last_update: Some(UpdateCounters {
                generation: 5,
                deltas_applied: 2,
                strategy: "IncrementalStableSkeleton".to_string(),
                subcore_touched: 7,
                touched_fraction: 0.07,
                cache_carried: 4,
                cache_dropped: 1,
            }),
            durability: Some(DurabilityCounters {
                log_bytes_appended: 4096,
                log_records_appended: 12,
                records_replayed: 3,
                recovery_truncated_bytes: 17,
                recovery_truncations: 1,
                compactions: 2,
                compaction_failures: 0,
                last_compaction_micros: 850,
                snapshot_bytes: 2048,
            }),
            shards: vec![
                ShardCounters {
                    shard: 0,
                    vertices: 7,
                    generation: 2,
                    cache: CacheCounters {
                        hits: 15,
                        misses: 6,
                        evictions: 0,
                        carried: 4,
                        dropped: 1,
                    },
                },
                ShardCounters {
                    shard: 1,
                    vertices: 3,
                    generation: 1,
                    cache: CacheCounters {
                        hits: 5,
                        misses: 4,
                        evictions: 0,
                        carried: 0,
                        dropped: 0,
                    },
                },
            ],
        }
    }

    #[test]
    fn text_dump_is_flat_and_complete() {
        let text = sample().render_text();
        assert!(text.contains("acq_queries_served 30\n"));
        assert!(text.contains("acq_timeouts 2\n"));
        assert!(text.contains("acq_deadline_shed 3\n"));
        assert!(text.contains("acq_dedup_hits 6\n"));
        assert!(text.contains("acq_cache_hit_rate 0.6667\n"));
        assert!(text.contains("acq_last_update_strategy IncrementalStableSkeleton\n"));
        assert!(text.contains("acq_log_bytes_appended 4096\n"));
        assert!(text.contains("acq_log_records_replayed 3\n"));
        assert!(text.contains("acq_recovery_truncations 1\n"));
        assert!(text.contains("acq_last_compaction_micros 850\n"));
        assert!(text.contains("acq_shards 2\n"));
        assert!(text.contains("acq_shard_0_vertices 7\n"));
        assert!(text.contains("acq_shard_1_generation 1\n"));
        assert!(text.contains("acq_shard_1_cache_hits 5\n"));
        // Flat `name value` lines only: every line splits into exactly two
        // whitespace-separated fields.
        for line in text.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "not flat: {line}");
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snapshot = sample();
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
        // And a default (no update yet) snapshot keeps its None.
        let cold = MetricsSnapshot::default();
        let json = serde_json::to_string(&cold).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cold);
        assert!(back.last_update.is_none());
        assert!(back.durability.is_none());
        assert!(back.shards.is_empty());
        assert!(
            !cold.render_text().contains("acq_log_"),
            "volatile servers must not emit durability lines"
        );
        assert!(
            !cold.render_text().contains("acq_shard"),
            "unsharded servers must not emit shard lines"
        );
    }

    #[test]
    fn hit_rate_handles_unused_cache() {
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
