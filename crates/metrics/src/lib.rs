//! # acq-metrics
//!
//! The community-quality measures of the paper's Section 7.2:
//!
//! * **CMF** — community member frequency: average relative occurrence
//!   frequency of the query vertex's keywords inside the returned
//!   communities (Equation 3).
//! * **CPJ** — community pair-wise Jaccard: average Jaccard similarity of the
//!   keyword sets over all member pairs (Equation 4).
//! * **MF** — member frequency of a single keyword across the returned
//!   communities (Section 7.2.2), used for the keyword-distribution plots and
//!   the "top-6 keywords" tables.
//! * Structural statistics (average member degree, fraction of members with
//!   degree ≥ k, community size) and distinct-keyword counts, used for
//!   Figure 8(c,d), Figure 12 and Table 4.
//!
//! Beyond the paper's measures, the [`serving`] module defines the
//! operational counters of the serving layer (`acq-server`): the
//! [`serving::MetricsSnapshot`] wire shape answered by a `Metrics` frame and
//! its plain-text dump.

#![deny(missing_docs)]

pub mod serving;

use acq_graph::{AttributedGraph, KeywordId, VertexId};
use std::collections::HashSet;

/// A community as far as the metrics are concerned: any set of vertices.
pub type Community = Vec<VertexId>;

/// Community member frequency (Equation 3): for each keyword of `reference_keywords`
/// (the paper uses `W(q)`), the fraction of members of each community carrying
/// it, averaged over keywords and communities. Ranges over `[0, 1]`; higher is
/// more cohesive. Returns 0.0 for degenerate inputs (no communities, empty
/// communities, or an empty reference keyword set).
pub fn cmf(
    graph: &AttributedGraph,
    communities: &[Community],
    reference_keywords: &[KeywordId],
) -> f64 {
    if communities.is_empty() || reference_keywords.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for community in communities {
        if community.is_empty() {
            continue;
        }
        for &kw in reference_keywords {
            let carrying = community.iter().filter(|&&v| graph.keyword_set(v).contains(kw)).count();
            total += carrying as f64 / community.len() as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Above this size the pairwise Jaccard of a community is estimated from a
/// systematic sample of members instead of all `|C|²` pairs. The paper's
/// communities returned by `Global` reach 10⁵ vertices, for which the exact
/// computation is quadratic and pointless — the estimate converges long before
/// this cut-off.
pub const CPJ_EXACT_LIMIT: usize = 400;

/// Community pair-wise Jaccard (Equation 4): the average keyword-set Jaccard
/// similarity over all ordered member pairs (including self-pairs, exactly as
/// the paper's `1/|Ci|²` normalisation does), averaged over communities.
///
/// Communities larger than [`CPJ_EXACT_LIMIT`] are evaluated on a systematic
/// sample of [`CPJ_EXACT_LIMIT`] members (every ⌈|C|/limit⌉-th member), which
/// keeps the measure tractable for the huge structure-only baselines.
pub fn cpj(graph: &AttributedGraph, communities: &[Community]) -> f64 {
    if communities.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for community in communities {
        if community.is_empty() {
            continue;
        }
        let sampled: Vec<VertexId> = if community.len() > CPJ_EXACT_LIMIT {
            let stride = community.len().div_ceil(CPJ_EXACT_LIMIT);
            community.iter().step_by(stride).copied().collect()
        } else {
            community.clone()
        };
        let mut acc = 0.0;
        for &a in &sampled {
            for &b in &sampled {
                acc += graph.keyword_set(a).jaccard(graph.keyword_set(b));
            }
        }
        total += acc / (sampled.len() * sampled.len()) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Member frequency of one keyword (Section 7.2.2): the fraction of members
/// carrying `keyword`, averaged over the communities.
pub fn member_frequency(
    graph: &AttributedGraph,
    communities: &[Community],
    keyword: KeywordId,
) -> f64 {
    if communities.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for community in communities {
        if community.is_empty() {
            continue;
        }
        let carrying =
            community.iter().filter(|&&v| graph.keyword_set(v).contains(keyword)).count();
        total += carrying as f64 / community.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// The keywords appearing anywhere in the communities ranked by their member
/// frequency (descending), as `(keyword, MF)` pairs. Used for Figure 11 and
/// the Tables 5–6 "top-6 keywords" rows.
pub fn keywords_by_member_frequency(
    graph: &AttributedGraph,
    communities: &[Community],
) -> Vec<(KeywordId, f64)> {
    let mut distinct: HashSet<KeywordId> = HashSet::new();
    for community in communities {
        for &v in community {
            distinct.extend(graph.keyword_set(v).iter());
        }
    }
    let mut ranked: Vec<(KeywordId, f64)> =
        distinct.into_iter().map(|kw| (kw, member_frequency(graph, communities, kw))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    ranked
}

/// Number of distinct keywords carried by the members of the communities
/// (Table 4).
pub fn distinct_keywords(graph: &AttributedGraph, communities: &[Community]) -> usize {
    let mut distinct: HashSet<KeywordId> = HashSet::new();
    for community in communities {
        for &v in community {
            distinct.extend(graph.keyword_set(v).iter());
        }
    }
    distinct.len()
}

/// Average community size (Figure 12).
pub fn average_size(communities: &[Community]) -> f64 {
    if communities.is_empty() {
        return 0.0;
    }
    communities.iter().map(Vec::len).sum::<usize>() as f64 / communities.len() as f64
}

/// Structural cohesion of a community measured *inside* the community: the
/// average member degree and the fraction of members with internal degree at
/// least `k` (Figure 8(c) and 8(d)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralCohesion {
    /// Mean internal degree over all members.
    pub average_degree: f64,
    /// Fraction of members whose internal degree is at least the threshold.
    pub fraction_with_min_degree: f64,
}

/// Computes [`StructuralCohesion`] for a set of communities with threshold `k`.
pub fn structural_cohesion(
    graph: &AttributedGraph,
    communities: &[Community],
    k: usize,
) -> StructuralCohesion {
    let mut degree_sum = 0.0;
    let mut meets = 0usize;
    let mut members = 0usize;
    for community in communities {
        let inside: HashSet<VertexId> = community.iter().copied().collect();
        for &v in community {
            let internal = graph.neighbors(v).iter().filter(|u| inside.contains(u)).count();
            degree_sum += internal as f64;
            if internal >= k {
                meets += 1;
            }
            members += 1;
        }
    }
    if members == 0 {
        StructuralCohesion { average_degree: 0.0, fraction_with_min_degree: 0.0 }
    } else {
        StructuralCohesion {
            average_degree: degree_sum / members as f64,
            fraction_with_min_degree: meets as f64 / members as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_graph::paper_figure3_graph;

    fn by_labels(graph: &AttributedGraph, labels: &[&str]) -> Community {
        labels.iter().map(|l| graph.vertex_by_label(l).unwrap()).collect()
    }

    #[test]
    fn cmf_counts_keyword_coverage() {
        let g = paper_figure3_graph();
        // Community {A, C, D}; reference keywords W(A) = {w, x, y}.
        // w: 1/3, x: 3/3, y: 3/3 -> mean = 7/9.
        let a = g.vertex_by_label("A").unwrap();
        let community = by_labels(&g, &["A", "C", "D"]);
        let wq: Vec<KeywordId> = g.keyword_set(a).iter().collect();
        let value = cmf(&g, &[community], &wq);
        assert!((value - 7.0 / 9.0).abs() < 1e-9, "got {value}");
        assert_eq!(cmf(&g, &[], &wq), 0.0);
        assert_eq!(cmf(&g, &[vec![]], &wq), 0.0);
        assert_eq!(cmf(&g, &[by_labels(&g, &["A"])], &[]), 0.0);
    }

    #[test]
    fn cpj_matches_hand_computation() {
        let g = paper_figure3_graph();
        // Community {A, C}: W(A)={w,x,y}, W(C)={x,y}.
        // Pairs: (A,A)=1, (C,C)=1, (A,C)=(C,A)=2/3 -> mean = (2 + 4/3)/4 = 5/6.
        let community = by_labels(&g, &["A", "C"]);
        let value = cpj(&g, &[community]);
        assert!((value - 5.0 / 6.0).abs() < 1e-9, "got {value}");
        assert_eq!(cpj(&g, &[]), 0.0);
    }

    #[test]
    fn higher_keyword_cohesion_scores_higher() {
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        let wq: Vec<KeywordId> = g.keyword_set(a).iter().collect();
        // The AC {A, C, D} shares x and y; the whole 2-ĉore {A,B,C,D,E} does not.
        let ac = by_labels(&g, &["A", "C", "D"]);
        let kcore = by_labels(&g, &["A", "B", "C", "D", "E"]);
        assert!(
            cmf(&g, std::slice::from_ref(&ac), &wq) > cmf(&g, std::slice::from_ref(&kcore), &wq)
        );
        assert!(cpj(&g, &[ac]) > cpj(&g, &[kcore]));
    }

    #[test]
    fn member_frequency_and_ranking() {
        let g = paper_figure3_graph();
        let x = g.dictionary().get("x").unwrap();
        let w = g.dictionary().get("w").unwrap();
        let community = by_labels(&g, &["A", "B", "C", "D"]);
        assert!((member_frequency(&g, std::slice::from_ref(&community), x) - 1.0).abs() < 1e-12);
        assert!((member_frequency(&g, std::slice::from_ref(&community), w) - 0.25).abs() < 1e-12);
        let ranked = keywords_by_member_frequency(&g, &[community]);
        assert_eq!(ranked[0].0, x, "x is carried by everyone");
        assert!(ranked.iter().any(|&(kw, _)| kw == w));
        assert_eq!(member_frequency(&g, &[], x), 0.0);
    }

    #[test]
    fn distinct_keywords_and_size() {
        let g = paper_figure3_graph();
        let community = by_labels(&g, &["A", "B", "C", "D"]);
        // Keywords: w, x, y, z? D has z -> {w, x, y, z}.
        assert_eq!(distinct_keywords(&g, std::slice::from_ref(&community)), 4);
        assert_eq!(average_size(&[community, by_labels(&g, &["H", "I"])]), 3.0);
        assert_eq!(average_size(&[]), 0.0);
        assert_eq!(distinct_keywords(&g, &[]), 0);
    }

    #[test]
    fn structural_cohesion_of_clique_vs_loose_cluster() {
        let g = paper_figure3_graph();
        let clique = by_labels(&g, &["A", "B", "C", "D"]);
        let loose = by_labels(&g, &["E", "F", "G", "H"]);
        let tight = structural_cohesion(&g, &[clique], 3);
        assert!((tight.average_degree - 3.0).abs() < 1e-12);
        assert!((tight.fraction_with_min_degree - 1.0).abs() < 1e-12);
        let weak = structural_cohesion(&g, &[loose], 3);
        assert!(weak.average_degree < 2.0);
        assert_eq!(weak.fraction_with_min_degree, 0.0);
        let empty = structural_cohesion(&g, &[], 3);
        assert_eq!(empty.average_degree, 0.0);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;
    use acq_graph::paper_figure3_graph;

    #[test]
    fn cpj_sampling_matches_exact_value_on_homogeneous_large_community() {
        // A large community of identical keyword sets has CPJ exactly 1.0, with
        // or without sampling.
        let g = paper_figure3_graph();
        let a = g.vertex_by_label("A").unwrap();
        let big: Community = std::iter::repeat_n(a, CPJ_EXACT_LIMIT * 3).collect();
        let value = cpj(&g, &[big]);
        assert!((value - 1.0).abs() < 1e-9);
    }
}
