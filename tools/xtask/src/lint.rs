//! The conventions the compiler cannot enforce, checked mechanically.
//!
//! Rules:
//!
//! 1. **raw-sync** — the model-checked crates (`acq-core`, `acq-server`,
//!    `acq-durable`) must route every synchronisation primitive through the
//!    `acq-sync` shims; a raw `std::sync::` / `std::thread` reference in
//!    code would be invisible to the model scheduler and silently shrink
//!    the verified surface.
//! 2. **no-panic** — non-test code in the serving crates (`acq-server`,
//!    `acq-durable`) must not `unwrap()`, `expect(..)` or `panic!`: the
//!    server owns long-lived state, so recoverable failures go through
//!    typed errors. A deliberate exception carries a same-line
//!    `// lint: allow(<rule>: <why>)` comment.
//! 3. **safety-comment** — every `unsafe` in first-party crates carries a
//!    `// SAFETY:` comment on the same line or just above it.
//! 4. **doc-pins** — the wire/format constants quoted in
//!    `docs/PROTOCOL.md` and `docs/DURABILITY.md` must match the source
//!    literals they document (protocol version, envelope length, error
//!    code strings, log/snapshot magic bytes).
//!
//! Everything here is line-oriented over a sanitised view of the source in
//! which comments and string literals are blanked out, so a banned token in
//! a doc example or an error message never fires, and `#[cfg(test)]` blocks
//! are tracked by brace depth and skipped where a rule is non-test only.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose synchronisation must go through the `acq-sync` shims.
const SHIMMED_CRATES: &[&str] = &["crates/acq-core", "crates/acq-server", "crates/acq-durable"];

/// Crates whose non-test code must not panic.
const NO_PANIC_CRATES: &[&str] = &["crates/acq-server", "crates/acq-durable"];

/// One rule violation, printable as `file:line: [rule] message`.
#[derive(Debug)]
pub struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Runs every rule against the workspace under `root`.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in SHIMMED_CRATES {
        for file in rust_files(&root.join(rel).join("src"))? {
            let source = std::fs::read_to_string(&file)?;
            let display = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            check_raw_sync(&display, &source, &mut findings);
            if NO_PANIC_CRATES.iter().any(|c| rel == c) {
                check_no_panic(&display, &source, &mut findings);
            }
        }
    }
    for file in first_party_sources(root)? {
        let source = std::fs::read_to_string(&file)?;
        let display = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        check_safety_comments(&display, &source, &mut findings);
    }
    check_doc_pins(root, &mut findings)?;
    Ok(findings)
}

/// All `.rs` files under every `crates/*/src` and `tools/*/src`.
fn first_party_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for parent in ["crates", "tools"] {
        let dir = root.join(parent);
        if !dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                files.extend(rust_files(&src)?);
            }
        }
    }
    Ok(files)
}

/// Recursively collects `.rs` files, sorted for deterministic output.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// One source line paired with its sanitised form (comments and string
/// literals blanked) and whether it sits inside a `#[cfg(test)]` block.
struct Line<'a> {
    number: usize,
    raw: &'a str,
    code: String,
    in_test: bool,
}

/// Lexer state carried across lines while sanitising.
enum State {
    Normal,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Produces the sanitised, test-annotated view every rule scans.
fn analyze(source: &str) -> Vec<Line<'_>> {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    // `#[cfg(test)]` region tracking: armed once the attribute is seen,
    // active from its first `{` until braces balance again.
    let mut test_armed = false;
    let mut test_depth = 0usize;
    let mut test_active = false;
    for (idx, raw) in source.lines().enumerate() {
        let code = sanitize_line(raw, &mut state);
        let mut in_test = test_active;
        if !test_active && code.contains("#[cfg(test)]") {
            test_armed = true;
            in_test = true;
        }
        if test_armed || test_active {
            for ch in code.chars() {
                match ch {
                    '{' => {
                        test_depth += 1;
                        test_armed = false;
                        test_active = true;
                        in_test = true;
                    }
                    '}' if test_active => {
                        test_depth = test_depth.saturating_sub(1);
                        if test_depth == 0 {
                            test_active = false;
                        }
                    }
                    _ => {}
                }
            }
        }
        lines.push(Line { number: idx + 1, raw, code, in_test });
    }
    lines
}

/// Blanks comments and string/char literals from one line, carrying
/// multi-line state (block comments, multi-line strings) in `state`.
fn sanitize_line(raw: &str, state: &mut State) -> String {
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match state {
            State::Block(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    *depth -= 1;
                    i += 2;
                    if *depth == 0 {
                        *state = State::Normal;
                    }
                } else if bytes[i..].starts_with(b"/*") {
                    *depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    *state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let terminator_len = 1 + *hashes as usize;
                if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take(*hashes as usize).all(|&b| b == b'#')
                    && bytes[i + 1..].len() >= *hashes as usize
                {
                    *state = State::Normal;
                    i += terminator_len;
                } else {
                    i += 1;
                }
            }
            State::Normal => {
                if bytes[i..].starts_with(b"//") {
                    break;
                } else if bytes[i..].starts_with(b"/*") {
                    *state = State::Block(1);
                    i += 2;
                } else if bytes[i] == b'"' {
                    *state = State::Str;
                    out.push('"');
                    i += 1;
                } else if bytes[i] == b'r'
                    && matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                    && raw_string_hashes(&bytes[i + 1..]).is_some()
                {
                    let hashes = raw_string_hashes(&bytes[i + 1..]).unwrap_or(0);
                    *state = State::RawStr(hashes);
                    i += 2 + hashes as usize;
                } else if bytes[i] == b'\'' {
                    // Char literal or lifetime. A lifetime has no closing
                    // quote within the next few bytes; a char literal does.
                    if let Some(end) = char_literal_end(&bytes[i..]) {
                        i += end;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(bytes[i] as char);
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `bytes` (just past a `r`) starts a raw string opener like `#"` or
/// `"`, returns the number of hashes; `None` otherwise.
fn raw_string_hashes(bytes: &[u8]) -> Option<u32> {
    let hashes = bytes.iter().take_while(|&&b| b == b'#').count();
    (bytes.get(hashes) == Some(&b'"')).then_some(hashes as u32)
}

/// Length of a char literal starting at a `'`, or `None` for a lifetime.
fn char_literal_end(bytes: &[u8]) -> Option<usize> {
    if bytes.get(1) == Some(&b'\\') {
        // Escaped char: find the closing quote.
        bytes.iter().skip(2).position(|&b| b == b'\'').map(|p| p + 3)
    } else {
        (bytes.get(2) == Some(&b'\'')).then_some(3)
    }
}

/// Whether the raw line carries a `// lint: allow(...)` exemption.
fn has_allowance(raw: &str) -> bool {
    raw.contains("// lint: allow(")
}

/// Rule 1: raw `std::sync::` / `std::thread` in shimmed crates.
fn check_raw_sync(file: &Path, source: &str, findings: &mut Vec<Finding>) {
    for line in analyze(source) {
        if line.in_test || has_allowance(line.raw) {
            continue;
        }
        for banned in ["std::sync::", "std::thread"] {
            for (pos, _) in line.code.match_indices(banned) {
                // `acq_sync::sync::..` contains no `std::`, but a path like
                // `::std::sync` or a cfg'd re-export should still fire; the
                // only thing to rule out is a longer identifier ending in
                // `std` (none exist, but stay precise).
                let prefix_ok = pos == 0
                    || !line.code.as_bytes()[pos - 1].is_ascii_alphanumeric()
                        && line.code.as_bytes()[pos - 1] != b'_';
                if prefix_ok {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: line.number,
                        rule: "raw-sync",
                        message: format!(
                            "`{banned}` bypasses the acq-sync shims; import via `acq_sync::`"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// Rule 2: `unwrap()` / `expect(..)` / `panic!` in non-test serving code.
fn check_no_panic(file: &Path, source: &str, findings: &mut Vec<Finding>) {
    for line in analyze(source) {
        if line.in_test || has_allowance(line.raw) {
            continue;
        }
        for banned in [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"]
        {
            if line.code.contains(banned) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: line.number,
                    rule: "no-panic",
                    message: format!(
                        "`{banned}` in non-test serving code; return a typed error or add \
                         `// lint: allow(<rule>: <why>)`"
                    ),
                });
            }
        }
    }
}

/// Rule 3: `unsafe` needs a `// SAFETY:` on the same line or within the
/// three lines above.
fn check_safety_comments(file: &Path, source: &str, findings: &mut Vec<Finding>) {
    let lines = analyze(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    for line in &lines {
        let Some(pos) = line.code.find("unsafe") else { continue };
        let after = line.code.as_bytes().get(pos + "unsafe".len());
        if after.is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
            continue; // `unsafe_code` in a lint attribute, not the keyword.
        }
        let documented = (line.number.saturating_sub(4)..line.number)
            .filter_map(|n| raw_lines.get(n))
            .chain(std::iter::once(&line.raw))
            .any(|l| l.contains("SAFETY:"));
        if !documented {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: line.number,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
            });
        }
    }
}

/// Rule 4: the constants the protocol/durability docs quote must match the
/// source literals.
fn check_doc_pins(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let frame = std::fs::read_to_string(root.join("crates/acq-server/src/frame.rs"))?;
    let log = std::fs::read_to_string(root.join("crates/acq-durable/src/log.rs"))?;
    let protocol_doc_path = root.join("docs/PROTOCOL.md");
    let durability_doc_path = root.join("docs/DURABILITY.md");
    let protocol_doc = std::fs::read_to_string(&protocol_doc_path)?;
    let durability_doc = std::fs::read_to_string(&durability_doc_path)?;

    let mut pin = |present: bool, file: &Path, message: String| {
        if !present {
            findings.push(Finding { file: file.to_path_buf(), line: 1, rule: "doc-pins", message });
        }
    };

    match const_int(&frame, "PROTOCOL_VERSION") {
        Some(version) => pin(
            protocol_doc.contains(&format!("Protocol version: **{version}**")),
            &protocol_doc_path,
            format!("does not state `Protocol version: **{version}**` (frame.rs says {version})"),
        ),
        None => pin(
            false,
            Path::new("crates/acq-server/src/frame.rs"),
            "cannot parse `PROTOCOL_VERSION`".into(),
        ),
    }
    match const_int(&frame, "ENVELOPE_LEN") {
        Some(len) => pin(
            protocol_doc.contains(&format!("{len}-byte envelope")),
            &protocol_doc_path,
            format!("does not describe the `{len}-byte envelope` frame.rs defines"),
        ),
        None => pin(
            false,
            Path::new("crates/acq-server/src/frame.rs"),
            "cannot parse `ENVELOPE_LEN`".into(),
        ),
    }
    for code in str_consts(&frame) {
        pin(
            protocol_doc.contains(&format!("`{code}`")),
            &protocol_doc_path,
            format!("does not document the error code `{code}` frame.rs defines"),
        );
    }
    for name in ["LOG_MAGIC", "SNAPSHOT_MAGIC"] {
        match byte_string_const(&log, name) {
            Some(bytes) => {
                let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02X}")).collect();
                let hex = hex.join(" ");
                pin(
                    durability_doc.contains(&hex),
                    &durability_doc_path,
                    format!("does not quote `{name}` as `{hex}` (log.rs changed?)"),
                );
            }
            None => pin(
                false,
                Path::new("crates/acq-durable/src/log.rs"),
                format!("cannot parse `{name}`"),
            ),
        }
    }
    Ok(())
}

/// Value of `pub const <name>: <ty> = <int>;` in `source`.
fn const_int(source: &str, name: &str) -> Option<u64> {
    let tail = source.split(&format!("pub const {name}:")).nth(1)?;
    let value = tail.split('=').nth(1)?.split(';').next()?.trim();
    value.parse().ok()
}

/// Every `pub const NAME: &str = "value";` string in `source`.
fn str_consts(source: &str) -> Vec<String> {
    let mut values = Vec::new();
    for line in source.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with("pub const ") || !trimmed.contains(": &str = \"") {
            continue;
        }
        if let Some(value) = trimmed.split('"').nth(1) {
            values.push(value.to_string());
        }
    }
    values
}

/// Bytes of `pub const <name>: [u8; N] = *b"...";`, unescaping `\xNN`,
/// `\0`, `\\` and `\"`.
fn byte_string_const(source: &str, name: &str) -> Option<Vec<u8>> {
    let tail = source.split(&format!("pub const {name}:")).nth(1)?;
    let literal = tail.split("*b\"").nth(1)?.split('"').next()?;
    let mut bytes = Vec::new();
    let mut chars = literal.bytes();
    while let Some(b) = chars.next() {
        if b != b'\\' {
            bytes.push(b);
            continue;
        }
        match chars.next()? {
            b'x' => {
                let hi = chars.next()? as char;
                let lo = chars.next()? as char;
                bytes.push((hi.to_digit(16)? * 16 + lo.to_digit(16)?) as u8);
            }
            b'0' => bytes.push(0),
            b'n' => bytes.push(b'\n'),
            b't' => bytes.push(b'\t'),
            b'r' => bytes.push(b'\r'),
            other => bytes.push(other),
        }
    }
    Some(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fixtures assemble banned tokens from pieces so this file stays clean
    // under its own rules if the lint scope ever widens to `tools/`.
    fn banned_sync() -> String {
        ["use std", "::sync::Mutex;"].concat()
    }

    fn banned_unwrap() -> String {
        ["let g = m.lock().", "unwrap", "();"].concat()
    }

    #[test]
    fn raw_sync_fires_in_code_but_not_comments_tests_or_strings() {
        let source = format!(
            "{code}\n/// doc: {code}\n// note: {code}\nlet s = \"{code}\";\n\
             #[cfg(test)]\nmod tests {{\n    {code}\n}}\n",
            code = banned_sync()
        );
        let mut findings = Vec::new();
        check_raw_sync(Path::new("x.rs"), &source, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn no_panic_fires_and_honours_allowances() {
        let allowed = format!("{} // lint: allow(expect: startup only)", banned_unwrap());
        let source = format!("{}\n{allowed}\n", banned_unwrap());
        let mut findings = Vec::new();
        check_no_panic(Path::new("x.rs"), &source, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn no_panic_skips_test_blocks_with_nested_braces() {
        let source = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f() {{\n        {u}\n    }}\n}}\nfn live() {{ {u} }}\n",
            u = banned_unwrap()
        );
        let mut findings = Vec::new();
        check_no_panic(Path::new("x.rs"), &source, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 7, "only the non-test occurrence fires");
    }

    #[test]
    fn safety_rule_accepts_documented_unsafe_and_skips_lint_attributes() {
        let documented =
            "// SAFETY: the slice is checked above.\nlet x = unsafe { *p };\n#![forbid(unsafe_code)]\n";
        let mut findings = Vec::new();
        check_safety_comments(Path::new("x.rs"), documented, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");

        let undocumented = "let x = unsafe { *p };\n";
        check_safety_comments(Path::new("x.rs"), undocumented, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn sanitizer_handles_block_comments_and_char_literals() {
        let mut state = State::Normal;
        assert_eq!(
            sanitize_line("let a = 1; /* hidden */ let b = 2;", &mut state),
            "let a = 1;  let b = 2;"
        );
        let mut state = State::Normal;
        assert_eq!(
            sanitize_line("let c = '\"'; let d = 'x'; let l: &'static str = s;", &mut state),
            "let c = ; let d = ; let l: &'static str = s;"
        );
        let mut state = State::Normal;
        sanitize_line("let open = \"spans", &mut state);
        assert!(matches!(state, State::Str), "string state carries across lines");
    }

    #[test]
    fn const_parsers_extract_the_documented_literals() {
        let source = "pub const PROTOCOL_VERSION: u8 = 1;\npub const ENVELOPE_LEN: usize = 10;\n\
                      pub const BACKPRESSURE: &str = \"backpressure\";\n";
        assert_eq!(const_int(source, "PROTOCOL_VERSION"), Some(1));
        assert_eq!(const_int(source, "ENVELOPE_LEN"), Some(10));
        assert_eq!(str_consts(source), vec!["backpressure".to_string()]);
        let log = "pub const LOG_MAGIC: [u8; 8] = *b\"ACQLOG\\x00\\x01\";\n";
        assert_eq!(byte_string_const(log, "LOG_MAGIC"), Some(b"ACQLOG\x00\x01".to_vec()));
    }
}
