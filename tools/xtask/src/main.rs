//! Workspace task runner. The only task so far is `lint`, the conventions
//! pass CI runs alongside the compiler:
//!
//! ```text
//! cargo run -p xtask -- lint [workspace-root]
//! ```
//!
//! Exits nonzero if any rule fires; see [`lint`] for the rules.

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_default();
    match task.as_str() {
        "lint" => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
            match lint::run(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for finding in &findings {
                        eprintln!("{finding}");
                    }
                    eprintln!("xtask lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [workspace-root]");
            ExitCode::FAILURE
        }
    }
}
