//! The marketing scenario from the paper's introduction: a gym wants to
//! advertise to the friends of a customer who are *also* interested in yoga.
//!
//! A synthetic Flickr-like social network is generated, a member with the
//! "yoga-ish" interest profile is picked as the query vertex, and the example
//! contrasts three ways of finding an audience:
//!
//! 1. plain community search (`Global`) — structurally tight, but many members
//!    never mention the interest;
//! 2. the ACQ with `S = {interest}` — structurally tight *and* every member
//!    shares the interest;
//! 3. the ACQ with the member's full profile — the most focused group.
//!
//! ```text
//! cargo run --example social_marketing
//! ```

use attributed_community_search::baselines::global_community;
use attributed_community_search::datagen;
use attributed_community_search::metrics;
use attributed_community_search::prelude::*;
use std::sync::Arc;

fn main() {
    // A Flickr-like social network, scaled down so the example runs instantly.
    let profile = datagen::flickr().scaled(0.25);
    let graph = Arc::new(datagen::generate(&profile));
    let engine = Engine::new(Arc::clone(&graph));
    let k = 5;

    // Pick a member with a reasonably deep core number and at least 5 interests
    // — our "Mary", the gym customer.
    let decomposition = engine.index().decomposition().clone();
    let mary =
        datagen::select_query_vertices_with_keywords(&graph, &decomposition, 1, k as u32, 5, 11)
            .into_iter()
            .next()
            .expect("the generated network has well-connected members");
    let interests = graph.keyword_terms(mary);
    println!(
        "query member: {} (core number {}), interests: {:?}",
        graph.label(mary).unwrap_or("?"),
        decomposition.core_number(mary),
        interests
    );
    // The interest the gym cares about: the one of Mary's interests that her
    // friends mention most often plays the role of "yoga".
    let target_interest = *interests
        .iter()
        .max_by_key(|&&interest| {
            graph
                .neighbors(mary)
                .iter()
                .filter(|&&friend| graph.keyword_terms(friend).contains(&interest))
                .count()
        })
        .expect("the query member has interests");
    println!("target interest for the campaign: {target_interest:?}\n");

    // --- 1. Structure-only community search. -------------------------------
    let kcore = global_community(&graph, mary, k).expect("core number >= k");
    let members: Vec<VertexId> = kcore.sorted_members();
    let carrying =
        members.iter().filter(|&&v| graph.keyword_terms(v).contains(&target_interest)).count();
    println!(
        "Global (k-core only): {:>5} members, {:>5} of them ({:.0}%) mention {target_interest:?}",
        members.len(),
        carrying,
        carrying as f64 / members.len() as f64 * 100.0
    );

    // --- 2. ACQ personalised to the target interest. -----------------------
    let query = Request::community(mary).k(k).keyword_terms(&graph, &[target_interest]);
    let result = engine.execute(&query).expect("valid request").result;
    if let Some(ac) = result.communities.first() {
        if result.label_size > 0 {
            println!(
                "ACQ (S = {{{target_interest}}}):    {:>5} members, every one of them shares {:?}",
                ac.len(),
                ac.label_terms(&graph)
            );
        } else {
            println!(
                "ACQ (S = {{{target_interest}}}):    no {k}-core shares the interest; falling back \
                 to the plain k-core of {} members",
                ac.len()
            );
        }
    }

    // --- 3. ACQ with the full interest profile. -----------------------------
    let full = Request::community(mary).k(k);
    let result = engine.execute(&full).expect("valid request").result;
    if let Some(ac) = result.communities.first() {
        let communities: Vec<Vec<VertexId>> = vec![ac.vertices.clone()];
        let wq: Vec<KeywordId> = graph.keyword_set(mary).iter().collect();
        println!(
            "ACQ (S = full profile): {:>4} members, AC-label {:?}, CMF {:.2}, CPJ {:.2}",
            ac.len(),
            ac.label_terms(&graph),
            metrics::cmf(&graph, &communities, &wq),
            metrics::cpj(&graph, &communities),
        );
        println!("\nsuggested campaign audience:");
        for name in ac.member_names(&graph).iter().take(15) {
            println!("  {name}");
        }
        if ac.len() > 15 {
            println!("  ... and {} more", ac.len() - 15);
        }
    } else {
        println!("ACQ (S = full profile): no keyword is shared by a whole {k}-core");
    }
}
