//! Serve the paper's Figure 3 graph over the framed TCP protocol.
//!
//! Binds an `acq-server` on `127.0.0.1:7878` (override with `ACQ_SERVE_ADDR`)
//! and keeps serving until killed. Setting `ACQ_SERVE_SECONDS=<n>` makes the
//! process shut the server down cleanly after `n` seconds — that is how the
//! CI smoke job bounds the run. Pair it with the `remote_query` example:
//!
//! ```text
//! cargo run --example serve &
//! cargo run --example remote_query
//! ```
//!
//! **Durable mode**: set `ACQ_SERVE_DIR=<path>` to put a crash-safe delta
//! log under that directory. Every acknowledged update is fsynced before it
//! is applied, and a restart pointing at the same directory replays the log
//! (snapshot + valid record suffix) before serving — this is what the CI
//! `recovery-smoke` job `kill -9`s and restarts. `ACQ_SERVE_COMPACT_EVERY`
//! overrides the compaction cadence (records between snapshots; 0 disables).
//!
//! The wire format is specified in `docs/PROTOCOL.md`; tuning knobs and the
//! metrics dump are covered in `docs/OPERATIONS.md`; the log format and
//! recovery semantics in `docs/DURABILITY.md`.

use attributed_community_search::prelude::*;
use std::sync::Arc;

fn main() {
    let addr = std::env::var("ACQ_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let graph = Arc::new(paper_figure3_graph());
    println!(
        "serving the Figure 3 graph: {} vertices, {} edges, {} keywords",
        graph.num_vertices(),
        graph.num_edges(),
        graph.dictionary().len()
    );

    let config = ServerConfig::default();
    let server = match std::env::var("ACQ_SERVE_DIR") {
        Ok(dir) => {
            let mut options = DurableOptions::default();
            if let Some(every) =
                std::env::var("ACQ_SERVE_COMPACT_EVERY").ok().and_then(|s| s.parse::<u64>().ok())
            {
                options.compact_every = every;
            }
            let (durable, recovery) =
                DurableEngine::open_dir(&dir, graph, options).expect("open the durable state");
            println!(
                "durable mode: dir={dir} snapshot_loaded={} records_replayed={} \
                 truncated_bytes={} generation={}",
                recovery.snapshot_loaded,
                recovery.records_replayed,
                recovery.truncated_bytes,
                recovery.generation
            );
            Server::bind_durable(&addr, Arc::new(durable), config).expect("bind the serve address")
        }
        Err(_) => {
            let engine = Arc::new(Engine::new(graph));
            Server::bind(&addr, engine, config).expect("bind the serve address")
        }
    };
    println!("listening on {} (protocol v1, see docs/PROTOCOL.md)", server.local_addr());

    match std::env::var("ACQ_SERVE_SECONDS").ok().and_then(|s| s.parse::<u64>().ok()) {
        Some(seconds) => {
            println!("auto-shutdown in {seconds}s (ACQ_SERVE_SECONDS)");
            std::thread::sleep(std::time::Duration::from_secs(seconds));
            let snapshot = server.metrics_snapshot();
            server.shutdown();
            println!("--- final metrics dump ---");
            print!("{}", snapshot.render_text());
        }
        None => {
            // Serve forever; the accept threads own the process.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                let s = server.metrics_snapshot().server;
                println!(
                    "[minute] connections={} queries={} updates={} errors={}",
                    s.connections_accepted,
                    s.queries_served,
                    s.updates_applied,
                    s.query_errors + s.update_errors + s.protocol_errors
                );
            }
        }
    }
}
