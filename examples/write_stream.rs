//! Stream a sequence of writes at a running `serve` example.
//!
//! Connects to `127.0.0.1:7878` (override with `ACQ_SERVE_ADDR`), retrying
//! for a few seconds, then submits `ACQ_STREAM_COUNT` (default 10 000)
//! single-delta update batches — each inserting one fresh keyword-tagged
//! vertex — and counts how many the server acknowledges before the
//! connection dies.
//!
//! The CI `recovery-smoke` job runs this against a **durable** server and
//! `kill -9`s the server mid-stream: the stream then ends with a transport
//! error, which is expected. The example exits non-zero only if *nothing*
//! was acknowledged (the server never took a write at all); otherwise it
//! prints the acknowledged count and exits zero. Every acknowledged update
//! was fsynced to the delta log before the `UpdateOk` frame was sent (see
//! `docs/DURABILITY.md`), so the restarted server must replay at least that
//! prefix.
//!
//! The inserted vertices are isolated (degree zero), so they never change
//! the answer to any community query the `remote_query` example asserts on.

use attributed_community_search::prelude::*;
use attributed_community_search::server::Client;

fn connect_with_retry(addr: &str) -> Client {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) => {
                if std::time::Instant::now() > deadline {
                    eprintln!("could not connect to {addr}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        }
    }
}

fn main() {
    let addr = std::env::var("ACQ_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let count = std::env::var("ACQ_STREAM_COUNT")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(10_000);
    let mut client = connect_with_retry(&addr);
    println!("streaming {count} vertex-insert updates to {addr}");

    let mut acked: u64 = 0;
    for i in 0..count {
        let delta = GraphDelta::insert_vertex(None, &["stream"]);
        match client.update(&[delta]) {
            Ok(report) => {
                acked += 1;
                if acked.is_multiple_of(500) {
                    println!("acked {acked} updates (generation {})", report.generation);
                }
            }
            Err(e) => {
                // The recovery-smoke job kills the server mid-stream; a
                // transport error here is the expected end of the run.
                println!("stream ended after {acked} acked updates (attempt {i}): {e}");
                break;
            }
        }
    }
    println!("write_stream: {acked} updates acknowledged");
    if acked == 0 {
        eprintln!("write_stream: the server never acknowledged a write");
        std::process::exit(1);
    }
}
