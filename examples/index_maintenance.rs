//! Incremental CL-tree maintenance under graph updates (Section 5.2.2 /
//! Appendix F): keyword insertions and edge insertions/removals are applied
//! to the index without rebuilding the core decomposition from scratch, and
//! the maintained index is checked against a fresh rebuild after every step.
//! The final section publishes the maintained index to a live engine through
//! [`Engine::swap_index`] — the generation handle that lets serving survive
//! graph updates.
//!
//! ```text
//! cargo run --example index_maintenance
//! ```

use attributed_community_search::cltree::{build_advanced, maintenance};
use attributed_community_search::datagen;
use attributed_community_search::prelude::*;
use std::sync::Arc;

fn main() {
    // A small DBLP-like graph.
    let profile = datagen::dblp().scaled(0.15);
    let mut graph = datagen::generate(&profile);
    let mut index = build_advanced(&graph, true);
    println!(
        "initial graph: {} vertices, {} edges; CL-tree: {} nodes, kmax {}",
        graph.num_vertices(),
        graph.num_edges(),
        index.num_nodes(),
        index.kmax()
    );

    // --- 1. Keyword updates: touch exactly one CL-tree node. ----------------
    let member = VertexId(0);
    graph = graph.with_keyword_added(member, "community-search").unwrap();
    let new_kw = graph.dictionary().get("community-search").unwrap();
    maintenance::apply_keyword_insertion(&mut index, member, new_kw);
    println!(
        "\nadded keyword 'community-search' to {}: index still valid = {}",
        graph.label(member).unwrap_or("?"),
        index.validate(&graph).is_ok()
    );

    // --- 2. Edge insertions: the affected subcore is updated incrementally. --
    let updates = [(1u32, 50u32), (2, 51), (3, 52), (10, 60), (11, 61)];
    for (a, b) in updates {
        let (u, v) = (VertexId(a), VertexId(b));
        if graph.has_edge(u, v) {
            continue;
        }
        graph = graph.with_edge_inserted(u, v).unwrap();
        index = maintenance::apply_edge_insertion(&index, &graph, u, v);
        let rebuilt = build_advanced(&graph, true);
        println!(
            "inserted edge ({a}, {b}): kmax {} | matches full rebuild = {}",
            index.kmax(),
            index.canonical_form() == rebuilt.canonical_form()
        );
    }

    // --- 3. Edge removals. ----------------------------------------------------
    let victim =
        graph.vertices().find(|&v| graph.degree(v) > 2).expect("graph has well-connected vertices");
    let neighbour = graph.neighbors(victim)[0];
    graph = graph.with_edge_removed(victim, neighbour).unwrap();
    index = maintenance::apply_edge_removal(&index, &graph, victim, neighbour);
    let rebuilt = build_advanced(&graph, true);
    println!(
        "\nremoved edge ({}, {}): matches full rebuild = {}",
        victim,
        neighbour,
        index.canonical_form() == rebuilt.canonical_form()
    );

    // --- 4. Publish the maintained index to a live engine. -------------------
    // `Engine::swap_index` atomically swaps in the maintained tree:
    // generation 1 serves from a fresh rebuild, generation 2 from the
    // maintained index — and the answers must agree.
    let graph = Arc::new(graph);
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 10, 4, 3);

    let fresh: Vec<_> =
        queries.iter().map(|&q| engine.execute(&Request::community(q).k(4)).unwrap()).collect();
    let generation = engine.swap_index(Arc::new(index));
    let maintained: Vec<_> =
        queries.iter().map(|&q| engine.execute(&Request::community(q).k(4)).unwrap()).collect();

    let agreements =
        fresh.iter().zip(&maintained).filter(|(a, b)| a.canonical() == b.canonical()).count();
    println!(
        "\nswapped maintained index into the live engine (generation {} -> {}):",
        fresh[0].meta.generation, generation
    );
    println!("maintained vs freshly built index: {agreements}/{} queries agree", queries.len());
}
