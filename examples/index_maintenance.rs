//! The live-update pipeline (Section 5.2.2 / Appendix F): graph deltas flow
//! into a **serving** engine through [`Engine::apply_updates`], which stages
//! the updated graph with incremental CSR/bitmap edits, maintains the CL-tree
//! through the subcore kernels (or falls back to a full rebuild past the
//! touched-subcore threshold), carries untouched cache entries across the
//! generation swap, and publishes everything atomically — queries in flight
//! finish on their snapshot, queries after the swap see the new graph.
//!
//! ```text
//! cargo run --example index_maintenance
//! ```

use attributed_community_search::datagen;
use attributed_community_search::prelude::*;
use std::sync::Arc;

fn main() {
    // A small DBLP-like graph served by a live engine.
    let profile = datagen::dblp().scaled(0.15);
    let graph = Arc::new(datagen::generate(&profile));
    let engine = Engine::new(Arc::clone(&graph));
    println!(
        "serving generation {}: {} vertices, {} edges, {} CL-tree nodes (kmax {})",
        engine.generation(),
        graph.num_vertices(),
        graph.num_edges(),
        engine.index().num_nodes(),
        engine.index().kmax()
    );

    // Warm the generation cache with a few queries.
    let queries = datagen::select_query_vertices(&graph, engine.index().decomposition(), 10, 4, 3);
    let requests: Vec<Request> = queries.iter().map(|&q| Request::community(q).k(4)).collect();
    for request in &requests {
        engine.execute(request).expect("valid request");
    }
    println!("warmed the cache: {:?}", engine.cache_stats());

    // --- 1. One mixed delta batch: keyword + edges + a brand-new vertex. ----
    let member = VertexId(0);
    let deltas = vec![
        GraphDelta::add_keyword(member, "community-search"),
        GraphDelta::insert_edge(VertexId(1), VertexId(50)),
        GraphDelta::insert_edge(VertexId(2), VertexId(51)),
        GraphDelta::insert_vertex(Some("newcomer"), &["community-search", "graphs"]),
    ];
    let report = engine.apply_updates(&deltas).expect("valid deltas");
    println!(
        "\napplied {} deltas -> generation {} via {:?}",
        report.deltas_applied, report.generation, report.strategy
    );
    println!(
        "  subcore touched: {} vertices ({:.1}% of the graph), cache carried {} / dropped {}",
        report.subcore_touched,
        100.0 * report.touched_fraction,
        report.cache_carried,
        report.cache_dropped
    );

    // The published graph contains everything, atomically.
    let live = engine.graph();
    let newcomer = live.vertex_by_label("newcomer").expect("vertex was inserted");
    println!(
        "  published graph: {} vertices, newcomer {} carries {:?}",
        live.num_vertices(),
        newcomer,
        live.keyword_terms(newcomer)
    );

    // --- 2. A stream of single-edge updates (the serving steady state). ----
    let mut stable = 0usize;
    let mut rebuilt = 0usize;
    for i in 0..8u32 {
        let (u, v) = (VertexId(3 + i), VertexId(60 + i));
        let current = engine.graph();
        if !current.contains_vertex(u) || !current.contains_vertex(v) {
            continue;
        }
        let delta = if current.has_edge(u, v) {
            GraphDelta::remove_edge(u, v)
        } else {
            GraphDelta::insert_edge(u, v)
        };
        let report = engine.apply_updates(&[delta]).expect("valid delta");
        match report.strategy {
            UpdateStrategy::IncrementalStableSkeleton => stable += 1,
            _ => rebuilt += 1,
        }
    }
    println!(
        "\nstreamed 8 single-edge updates: {stable} kept the skeleton (cache carried over), \
         {rebuilt} rebuilt it; now at generation {}",
        engine.generation()
    );

    // --- 3. Maintained state == from-scratch rebuild, query for query. -----
    let final_graph = engine.graph();
    let fresh = Engine::new(Arc::clone(&final_graph));
    let agreements = requests
        .iter()
        .filter(|request| {
            engine.execute(request).expect("valid").result
                == fresh.execute(request).expect("valid").result
        })
        .count();
    println!(
        "\nmaintained engine vs from-scratch engine on the final graph: {agreements}/{} \
         queries byte-identical",
        requests.len()
    );

    // --- 4. The low-level handle is still there for external indexes. ------
    // `swap_index` publishes an externally built tree for the current graph
    // (fresh cache, new generation) — the escape hatch apply_updates is
    // built on.
    let generation = engine.swap_index(Arc::new(build_advanced(&final_graph, true)));
    println!("swap_index published an externally built index as generation {generation}");
}
