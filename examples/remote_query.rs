//! A remote client session against a running `serve` example.
//!
//! Connects to `127.0.0.1:7878` (override with `ACQ_SERVE_ADDR`), retrying
//! for a few seconds so it can be launched back-to-back with the server.
//! Then it exercises every frame kind — ping, a single query, a batch of
//! queries, an update through the transactor, and a metrics scrape — and
//! **exits non-zero** if any step fails or the scraped counters are zero,
//! which is what the CI `server-smoke` job asserts.
//!
//! ```text
//! cargo run --example serve &
//! cargo run --example remote_query
//! ```

use attributed_community_search::prelude::*;
use attributed_community_search::server::Client;

fn connect_with_retry(addr: &str) -> Client {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) => {
                if std::time::Instant::now() > deadline {
                    eprintln!("could not connect to {addr}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        }
    }
}

fn main() {
    let addr = std::env::var("ACQ_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let mut client = connect_with_retry(&addr);

    // 1. Liveness.
    client.ping().expect("ping answered");
    println!("ping: ok");

    // 2. One query: the paper's Section 3 example (q = A = vertex 0, k = 2).
    let response = client.query(&Request::community(VertexId(0)).k(2)).expect("query answered");
    let ac = &response.result.communities[0];
    println!(
        "community of vertex 0 (k=2): {} members, label size {}, algorithm {}, generation {}",
        ac.vertices.len(),
        response.result.label_size,
        response.meta.algorithm,
        response.meta.generation
    );
    assert!(!ac.vertices.is_empty(), "the paper's example community is non-empty");

    // 3. A pipelined batch — sent before any response is read, so the
    //    server's per-connection batcher can run it as one execute_batch.
    let batch: Vec<Request> = (0..8u32).map(|v| Request::community(VertexId(v)).k(1)).collect();
    let answers = client.query_batch(&batch).expect("batch answered");
    let ok = answers.iter().filter(|a| a.is_ok()).count();
    println!("batch of {}: {} ok, {} rejected", batch.len(), ok, answers.len() - ok);
    assert_eq!(ok, batch.len(), "every batched query succeeds on the toy graph");

    // 4. A write through the transactor: a new edge E–B (not in the paper
    //    graph), then remove it again so repeated runs stay idempotent.
    let report = client
        .update(&[GraphDelta::InsertEdge { u: VertexId(4), v: VertexId(1) }])
        .expect("update applied");
    println!(
        "update: generation {}, {} deltas, strategy {:?}",
        report.generation, report.deltas_applied, report.strategy
    );
    let report = client
        .update(&[GraphDelta::RemoveEdge { u: VertexId(4), v: VertexId(1) }])
        .expect("revert applied");
    println!("revert: generation {}", report.generation);

    // 5. Query the post-update generation twice: the first run warms the
    //    index cache (a miss), the second hits it. The cache is
    //    per-generation — the updates above dropped the old one — so this is
    //    what makes the scraped CacheStats non-zero.
    let warm = client.query(&Request::community(VertexId(0)).k(2)).expect("warming query");
    let hit = client.query(&Request::community(VertexId(0)).k(2)).expect("cached query");
    println!(
        "cache warm-up: misses {} then hits {} (generation {})",
        warm.meta.cache_misses, hit.meta.cache_hits, hit.meta.generation
    );
    assert!(warm.meta.cache_misses > 0, "first post-update query must miss");
    assert!(hit.meta.cache_hits > 0, "repeated query must hit the cache");

    // 6. Scrape the counters and hold the smoke-test line: everything this
    //    session did must be visible in the metrics frame.
    let snapshot = client.metrics().expect("metrics answered");
    print!("{}", snapshot.render_text());
    let s = &snapshot.server;
    assert!(s.queries_served >= 11, "queries_served={}", s.queries_served);
    assert!(s.updates_applied >= 2, "updates_applied={}", s.updates_applied);
    assert!(s.batches_executed >= 1, "batches_executed={}", s.batches_executed);
    assert!(snapshot.cache.hits + snapshot.cache.misses > 0, "the engine cache saw no traffic");
    assert!(snapshot.generation >= 3, "generation={}", snapshot.generation);
    println!("remote_query: all assertions passed");
}
