//! Quickstart: the paper's running example (Figure 3) end to end, through
//! the unified `Request`/`Executor` API.
//!
//! Builds the ten-vertex toy graph, constructs the owning engine (CL-tree
//! index behind a swappable handle), and runs a handful of attributed
//! community queries — Problem 1 with different algorithms plus the two
//! Appendix G variants — printing the communities and their AC-labels.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use attributed_community_search::prelude::*;
use std::sync::Arc;

fn main() {
    // The attributed graph of Figure 3(a): vertices A..J with keywords w,x,y,z.
    let graph = Arc::new(paper_figure3_graph());
    println!(
        "graph: {} vertices, {} edges, {} distinct keywords",
        graph.num_vertices(),
        graph.num_edges(),
        graph.dictionary().len()
    );

    // Build the query engine (CL-tree index, advanced construction).
    let engine = Engine::new(Arc::clone(&graph));
    let index = engine.index();
    println!(
        "CL-tree: {} nodes, height {}, kmax {} (generation {})",
        index.num_nodes(),
        index.height(),
        index.kmax(),
        engine.generation()
    );

    let q = graph.vertex_by_label("A").expect("vertex A exists");

    // --- The paper's Section 3 example: q = A, k = 2, S = W(A). ------------
    let response = engine.execute(&Request::community(q).k(2)).expect("valid request");
    println!(
        "\nACQ(q = A, k = 2, S = W(A))  [{} in {}us]:",
        response.meta.algorithm, response.meta.wall_time_us
    );
    for community in response.communities() {
        println!(
            "  members {:?}  AC-label {:?}",
            community.member_names(&graph),
            community.label_terms(&graph)
        );
    }

    // --- Personalisation: restrict S to a single keyword. ------------------
    let personalised = Request::community(q).k(1).keyword_terms(&graph, &["x"]);
    let response = engine.execute(&personalised).expect("valid request");
    println!("\nACQ(q = A, k = 1, S = {{x}}):");
    for community in response.communities() {
        println!(
            "  members {:?}  AC-label {:?}",
            community.member_names(&graph),
            community.label_terms(&graph)
        );
    }

    // --- Every algorithm of the paper returns the same answer. -------------
    println!("\nalgorithm agreement for (q = A, k = 2):");
    let reference = engine.execute(&Request::community(q).k(2)).unwrap().canonical();
    for algorithm in AcqAlgorithm::ALL {
        let response = engine.execute(&Request::community(q).k(2).algorithm(algorithm)).unwrap();
        println!(
            "  {:<8} -> {} communities, label size {}, agrees = {}",
            algorithm.name(),
            response.communities().len(),
            response.result.label_size,
            response.canonical() == reference
        );
    }

    // --- Variant queries (Appendix G): the same door, one more knob. --------
    let x = graph.dictionary().get("x").unwrap();
    let y = graph.dictionary().get("y").unwrap();
    let v1 = engine.execute(&Request::community(q).k(2).exact_keywords([x])).unwrap();
    println!(
        "\nVariant 1 via {} (S = {{x}} required): {:?}",
        v1.meta.algorithm,
        v1.communities()[0].member_names(&graph)
    );
    let v2 = engine.execute(&Request::community(q).k(2).keywords([x, y]).threshold(0.5)).unwrap();
    println!(
        "Variant 2 via {} (>= 50% of {{x, y}}):  {:?}",
        v2.meta.algorithm,
        v2.communities()[0].member_names(&graph)
    );

    // --- Batches fan out over a worker pool, answers stay in order. ---------
    let requests: Vec<Request> = graph.vertices().map(|v| Request::community(v).k(2)).collect();
    let responses = engine.execute_batch(&requests);
    let answered = responses.iter().filter(|r| r.is_ok()).count();
    println!("\nbatch over every vertex: {answered}/{} answered", requests.len());
}
