//! Quickstart: the paper's running example (Figure 3) end to end.
//!
//! Builds the ten-vertex toy graph, constructs the CL-tree index, and runs a
//! handful of attributed community queries with different algorithms, printing
//! the communities and their AC-labels.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use attributed_community_search::prelude::*;

fn main() {
    // The attributed graph of Figure 3(a): vertices A..J with keywords w,x,y,z.
    let graph = paper_figure3_graph();
    println!(
        "graph: {} vertices, {} edges, {} distinct keywords",
        graph.num_vertices(),
        graph.num_edges(),
        graph.dictionary().len()
    );

    // Build the query engine (CL-tree index, advanced construction).
    let engine = AcqEngine::new(&graph);
    println!(
        "CL-tree: {} nodes, height {}, kmax {}",
        engine.index().num_nodes(),
        engine.index().height(),
        engine.index().kmax()
    );

    let q = graph.vertex_by_label("A").expect("vertex A exists");

    // --- The paper's Section 3 example: q = A, k = 2, S = W(A). ------------
    let result = engine.query(&AcqQuery::new(q, 2)).expect("valid query");
    println!("\nACQ(q = A, k = 2, S = W(A)):");
    for community in &result.communities {
        println!(
            "  members {:?}  AC-label {:?}",
            community.member_names(&graph),
            community.label_terms(&graph)
        );
    }

    // --- Personalisation: restrict S to a single keyword. ------------------
    let personalised = AcqQuery::with_keyword_terms(&graph, q, 1, &["x"]);
    let result = engine.query(&personalised).expect("valid query");
    println!("\nACQ(q = A, k = 1, S = {{x}}):");
    for community in &result.communities {
        println!(
            "  members {:?}  AC-label {:?}",
            community.member_names(&graph),
            community.label_terms(&graph)
        );
    }

    // --- Every algorithm of the paper returns the same answer. -------------
    println!("\nalgorithm agreement for (q = A, k = 2):");
    let reference = engine.query(&AcqQuery::new(q, 2)).unwrap().canonical();
    for algorithm in AcqAlgorithm::ALL {
        let result = engine.query_with(&AcqQuery::new(q, 2), algorithm).unwrap();
        println!(
            "  {:<8} -> {} communities, label size {}, agrees = {}",
            algorithm.name(),
            result.communities.len(),
            result.label_size,
            result.canonical() == reference
        );
    }

    // --- Variant queries (Appendix G). --------------------------------------
    let x = graph.dictionary().get("x").unwrap();
    let y = graph.dictionary().get("y").unwrap();
    let v1 = engine.query_variant1(&Variant1Query { vertex: q, k: 2, keywords: vec![x] }).unwrap();
    println!("\nVariant 1 (S = {{x}} required): {:?}", v1.communities[0].member_names(&graph));
    let v2 = engine
        .query_variant2(&Variant2Query { vertex: q, k: 2, keywords: vec![x, y], theta: 0.5 })
        .unwrap();
    println!("Variant 2 (>= 50% of {{x, y}}):  {:?}", v2.communities[0].member_names(&graph));
}
