//! The DBLP case study of the paper (Figures 2, 10 and 18): personalised
//! research communities around two prolific authors.
//!
//! The example runs on the hand-crafted co-authorship graph of
//! `acq_datagen::case_study` (a stand-in for DBLP, see DESIGN.md) and shows
//! how different query keyword sets `S` pull out different communities for
//! the same author, how the AC compares with the structure-only k-core, and
//! how the Variant 1 / Variant 2 queries behave.
//!
//! ```text
//! cargo run --example researcher_communities
//! ```

use attributed_community_search::baselines::global_community;
use attributed_community_search::datagen::case_study::{self, themes};
use attributed_community_search::metrics;
use attributed_community_search::prelude::*;

fn print_result(graph: &AttributedGraph, heading: &str, result: &AcqResult) {
    println!("\n{heading}");
    if result.communities.is_empty() {
        println!("  (no community satisfies the constraints)");
        return;
    }
    for community in &result.communities {
        println!("  {} members, AC-label {:?}", community.len(), community.label_terms(graph));
        println!("    {}", community.member_names(graph).join(", "));
    }
}

fn main() {
    let graph = case_study::case_study_graph();
    let engine = AcqEngine::new(&graph);
    let k = 4;

    // ------------------------------------------------------------------ Jim
    let jim = case_study::author_vertex(&graph, case_study::CaseStudyAuthor::JimGray);
    println!("== Jim Gray (k = {k}) ==");
    println!("keywords of the query vertex: {:?}", graph.keyword_terms(jim));

    // Figure 2(a): the database-systems side of Jim's collaborations.
    let db_query = AcqQuery::with_keyword_terms(&graph, jim, k, themes::DATABASE);
    print_result(
        &graph,
        "S = {transaction, data, management, system, research}:",
        &engine.query(&db_query).unwrap(),
    );

    // Figure 2(b): the Sloan Digital Sky Survey side.
    let sdss_query = AcqQuery::with_keyword_terms(&graph, jim, k, themes::SDSS);
    print_result(
        &graph,
        "S = {sloan, digital, sky, survey, sdss}:",
        &engine.query(&sdss_query).unwrap(),
    );

    // What a keyword-oblivious method returns instead: one big k-core.
    let kcore = global_community(&graph, jim, k).expect("Jim sits in a 4-core");
    let distinct = metrics::distinct_keywords(&graph, &[kcore.sorted_members()]);
    println!(
        "\nGlobal (structure only): {} members, {} distinct keywords — hard to interpret",
        kcore.len(),
        distinct
    );

    // --------------------------------------------------------------- Jiawei
    let han = case_study::author_vertex(&graph, case_study::CaseStudyAuthor::JiaweiHan);
    println!("\n== Jiawei Han (k = {k}) ==");

    // Figure 10(a): graph-analysis collaborators.
    let analysis = AcqQuery::with_keyword_terms(&graph, han, k, themes::GRAPH_ANALYSIS);
    print_result(
        &graph,
        "S = {analysis, mine, data, information, network}:",
        &engine.query(&analysis).unwrap(),
    );

    // Figure 10(b): pattern-mining collaborators.
    let pattern = AcqQuery::with_keyword_terms(&graph, han, k, themes::PATTERN_MINING);
    print_result(&graph, "S = {mine, data, pattern, database}:", &engine.query(&pattern).unwrap());

    // ------------------------------------------------ Variants (Figure 18)
    println!("\n== Variants (Jiawei Han) ==");
    let stream_kw: Vec<KeywordId> =
        themes::STREAM.iter().filter_map(|t| graph.dictionary().get(t)).collect();
    let v1 = engine
        .query_variant1(&Variant1Query { vertex: han, k, keywords: stream_kw.clone() })
        .unwrap();
    print_result(
        &graph,
        "Variant 1 — every member must contain {stream, classification, data, mine}:",
        &v1,
    );

    let v2 = engine
        .query_variant2(&Variant2Query { vertex: han, k, keywords: stream_kw, theta: 0.6 })
        .unwrap();
    print_result(&graph, "Variant 2 — every member must contain >= 60% of those keywords:", &v2);
}
