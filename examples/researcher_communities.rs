//! The DBLP case study of the paper (Figures 2, 10 and 18): personalised
//! research communities around two prolific authors.
//!
//! The example runs on the hand-crafted co-authorship graph of
//! `acq_datagen::case_study` (a stand-in for DBLP, see DESIGN.md) and shows
//! how different query keyword sets `S` pull out different communities for
//! the same author, how the AC compares with the structure-only k-core, and
//! how the Variant 1 / Variant 2 queries behave.
//!
//! ```text
//! cargo run --example researcher_communities
//! ```

use attributed_community_search::baselines::global_community;
use attributed_community_search::datagen::case_study::{self, themes};
use attributed_community_search::metrics;
use attributed_community_search::prelude::*;
use std::sync::Arc;

fn print_result(graph: &AttributedGraph, heading: &str, result: &AcqResult) {
    println!("\n{heading}");
    if result.communities.is_empty() {
        println!("  (no community satisfies the constraints)");
        return;
    }
    for community in &result.communities {
        println!("  {} members, AC-label {:?}", community.len(), community.label_terms(graph));
        println!("    {}", community.member_names(graph).join(", "));
    }
}

fn main() {
    let graph = Arc::new(case_study::case_study_graph());
    let engine = Engine::new(Arc::clone(&graph));
    let k = 4;

    // ------------------------------------------------------------------ Jim
    let jim = case_study::author_vertex(&graph, case_study::CaseStudyAuthor::JimGray);
    println!("== Jim Gray (k = {k}) ==");
    println!("keywords of the query vertex: {:?}", graph.keyword_terms(jim));

    // Figure 2(a): the database-systems side of Jim's collaborations.
    let db_query = Request::community(jim).k(k).keyword_terms(&graph, themes::DATABASE);
    print_result(
        &graph,
        "S = {transaction, data, management, system, research}:",
        &engine.execute(&db_query).unwrap().result,
    );

    // Figure 2(b): the Sloan Digital Sky Survey side.
    let sdss_query = Request::community(jim).k(k).keyword_terms(&graph, themes::SDSS);
    print_result(
        &graph,
        "S = {sloan, digital, sky, survey, sdss}:",
        &engine.execute(&sdss_query).unwrap().result,
    );

    // What a keyword-oblivious method returns instead: one big k-core.
    let kcore = global_community(&graph, jim, k).expect("Jim sits in a 4-core");
    let distinct = metrics::distinct_keywords(&graph, &[kcore.sorted_members()]);
    println!(
        "\nGlobal (structure only): {} members, {} distinct keywords — hard to interpret",
        kcore.len(),
        distinct
    );

    // --------------------------------------------------------------- Jiawei
    let han = case_study::author_vertex(&graph, case_study::CaseStudyAuthor::JiaweiHan);
    println!("\n== Jiawei Han (k = {k}) ==");

    // Figure 10(a): graph-analysis collaborators.
    let analysis = Request::community(han).k(k).keyword_terms(&graph, themes::GRAPH_ANALYSIS);
    print_result(
        &graph,
        "S = {analysis, mine, data, information, network}:",
        &engine.execute(&analysis).unwrap().result,
    );

    // Figure 10(b): pattern-mining collaborators.
    let pattern = Request::community(han).k(k).keyword_terms(&graph, themes::PATTERN_MINING);
    print_result(
        &graph,
        "S = {mine, data, pattern, database}:",
        &engine.execute(&pattern).unwrap().result,
    );

    // ------------------------------------------------ Variants (Figure 18)
    println!("\n== Variants (Jiawei Han) ==");
    let stream_kw: Vec<KeywordId> =
        themes::STREAM.iter().filter_map(|t| graph.dictionary().get(t)).collect();
    let v1 = engine
        .execute(&Request::community(han).k(k).exact_keywords(stream_kw.iter().copied()))
        .unwrap();
    print_result(
        &graph,
        "Variant 1 — every member must contain {stream, classification, data, mine}:",
        &v1.result,
    );

    let v2 =
        engine.execute(&Request::community(han).k(k).keywords(stream_kw).threshold(0.6)).unwrap();
    print_result(
        &graph,
        "Variant 2 — every member must contain >= 60% of those keywords:",
        &v2.result,
    );
}
