//! Equivalence tests for the live-update pipeline: for arbitrary delta
//! sequences — edge inserts/removals, keyword adds/removes, vertex inserts —
//! `Engine::apply_updates` must produce **byte-identical** query results to a
//! from-scratch engine built on the updated graph, whichever maintenance path
//! (stable skeleton, skeleton rebuild, threshold-forced full rebuild) the
//! driver takes. Universe sizes straddle the 64-bit word boundary so the
//! incremental bitmap maintenance hits its promotion/rebuild edge cases.

use attributed_community_search::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Decodes raw proptest tuples into a valid delta sequence for a graph that
/// starts with `n` vertices (vertex inserts grow the id space as they go).
fn decode_deltas(n0: usize, raw: &[(u32, u32, u32, u32)]) -> Vec<GraphDelta> {
    let mut n = n0;
    let mut deltas = Vec::new();
    for &(kind, a, b, kw) in raw {
        let (a, b) = ((a as usize % n) as u32, (b as usize % n) as u32);
        let term = format!("kw{kw}");
        match kind {
            0 if a != b => deltas.push(GraphDelta::insert_edge(VertexId(a), VertexId(b))),
            1 if a != b => deltas.push(GraphDelta::remove_edge(VertexId(a), VertexId(b))),
            2 => deltas.push(GraphDelta::AddKeyword { vertex: VertexId(a), term }),
            3 => deltas.push(GraphDelta::RemoveKeyword { vertex: VertexId(a), term }),
            4 => {
                deltas.push(GraphDelta::InsertVertex { label: None, keywords: vec![term] });
                n += 1;
            }
            _ => {}
        }
    }
    deltas
}

/// Builds a random attributed graph with `n` vertices from raw edge pairs and
/// keyword picks.
fn build_graph(n: usize, edges: &[(u32, u32)], keywords: &[Vec<u32>]) -> AttributedGraph {
    let mut b = GraphBuilder::new();
    for kws in keywords.iter().take(n) {
        let terms: Vec<String> = kws.iter().map(|k| format!("kw{k}")).collect();
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        b.add_unlabeled_vertex(&refs);
    }
    for _ in keywords.len()..n {
        b.add_unlabeled_vertex(&[]);
    }
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
    }
    b.build()
}

/// Asserts that `live` (the engine that consumed deltas) answers exactly like
/// a from-scratch engine over its published graph, for a spread of query
/// vertices, degree bounds and spec kinds.
fn assert_equivalent_to_fresh(live: &Engine) {
    let graph = live.graph();
    let fresh = Engine::builder(Arc::clone(&graph)).cache_capacity(0).threads(1).build();
    let keyword = graph.dictionary().iter().next().map(|(id, _)| id);
    for v in graph.vertices().step_by(1 + graph.num_vertices() / 12) {
        for k in [1usize, 2, 3] {
            let requests = {
                let mut rs = vec![Request::community(v).k(k)];
                if let Some(kw) = keyword {
                    rs.push(Request::community(v).k(k).exact_keywords([kw]));
                    rs.push(Request::community(v).k(k).keywords([kw]).threshold(0.5));
                }
                rs
            };
            for request in requests {
                let a = live.execute(&request).expect("valid request");
                let b = fresh.execute(&request).expect("valid request");
                assert_eq!(
                    a.result, b.result,
                    "maintained engine diverged from rebuild at v={v:?} k={k}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the update pipeline: arbitrary delta
    /// batches through `apply_updates` ≡ rebuild-from-scratch, across
    /// maintenance strategies (default threshold, never-rebuild, and
    /// always-rebuild all agree), on word-boundary universes n = 63..65.
    #[test]
    fn apply_updates_equals_rebuild_on_boundary_universes(
        raw in (
            62usize..66,
            proptest::collection::vec((0u32..64, 0u32..64), 40..160),
            proptest::collection::vec(proptest::collection::vec(0u32..6, 0..4), 66),
            proptest::collection::vec((0u32..5, 0u32..80, 0u32..80, 0u32..6), 1..20),
        )
    ) {
        let (n, edges, keywords, raw_deltas) = raw;
        let graph = Arc::new(build_graph(n, &edges, &keywords));
        let deltas = decode_deltas(n, &raw_deltas);

        // Three engines, three maintenance policies.
        let incremental = Engine::builder(Arc::clone(&graph)).rebuild_threshold(1.1).build();
        let adaptive = Engine::builder(Arc::clone(&graph)).build();
        let rebuild = Engine::builder(Arc::clone(&graph)).rebuild_threshold(0.0).build();

        for engine in [&incremental, &adaptive, &rebuild] {
            let report = engine.apply_updates(&deltas).expect("decoded deltas are valid");
            prop_assert_eq!(report.generation, 2);
            prop_assert_eq!(engine.generation(), 2);
        }
        prop_assert_eq!(
            rebuild.apply_updates(&[]).expect("empty batch").strategy,
            UpdateStrategy::IncrementalStableSkeleton,
            "an empty batch touches nothing"
        );

        assert_equivalent_to_fresh(&incremental);
        assert_equivalent_to_fresh(&adaptive);
        assert_equivalent_to_fresh(&rebuild);
    }

    /// Splitting one delta batch into many smaller `apply_updates` calls must
    /// not change any answer (each call re-stages from the published
    /// generation), and the final graphs agree edge-for-edge.
    #[test]
    fn batched_and_single_delta_application_agree(
        raw in (
            8usize..24,
            proptest::collection::vec((0u32..32, 0u32..32), 10..60),
            proptest::collection::vec(proptest::collection::vec(0u32..5, 0..4), 24),
            proptest::collection::vec((0u32..5, 0u32..40, 0u32..40, 0u32..5), 1..16),
        )
    ) {
        let (n, edges, keywords, raw_deltas) = raw;
        let graph = Arc::new(build_graph(n, &edges, &keywords));
        let deltas = decode_deltas(n, &raw_deltas);

        let one_batch = Engine::new(Arc::clone(&graph));
        one_batch.apply_updates(&deltas).expect("valid");
        let one_at_a_time = Engine::new(Arc::clone(&graph));
        for delta in &deltas {
            one_at_a_time.apply_updates(std::slice::from_ref(delta)).expect("valid");
        }

        let (ga, gb) = (one_batch.graph(), one_at_a_time.graph());
        prop_assert_eq!(ga.num_vertices(), gb.num_vertices());
        prop_assert_eq!(ga.num_edges(), gb.num_edges());
        for v in ga.vertices() {
            prop_assert_eq!(ga.neighbors(v), gb.neighbors(v));
        }
        assert_equivalent_to_fresh(&one_batch);
        assert_equivalent_to_fresh(&one_at_a_time);
    }
}

#[test]
fn carried_cache_entries_change_no_answers() {
    // Deterministic end-to-end: warm the cache, apply a skeleton-preserving
    // delta, and check the carried generation still answers byte-identically
    // with hits flowing.
    let graph = Arc::new(attributed_community_search::datagen::generate(
        &attributed_community_search::datagen::tiny(),
    ));
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = CoreDecomposition::compute(&graph);
    let queries: Vec<Request> = graph
        .vertices()
        .filter(|&v| decomposition.core_number(v) >= 2)
        .take(8)
        .map(|v| Request::community(v).k(2))
        .collect();
    assert!(!queries.is_empty());
    let before: Vec<AcqResult> =
        queries.iter().map(|r| engine.execute(r).unwrap().result).collect();

    // Find a vertex pair inside one ĉore whose connecting edge is absent —
    // the insert is likely skeleton-preserving; fall back to whatever
    // strategy the driver picks (answers must match either way).
    let index = engine.index();
    let (u, v) = {
        let mut pick = None;
        'outer: for u in graph.vertices() {
            for v in graph.vertices() {
                if u < v
                    && !graph.has_edge(u, v)
                    && decomposition.core_number(u) >= 3
                    && decomposition.core_number(v) >= 3
                    && index.node_of(u) == index.node_of(v)
                {
                    pick = Some((u, v));
                    break 'outer;
                }
            }
        }
        pick.unwrap_or_else(|| {
            // Fall back to any absent edge; the equivalence holds for every
            // strategy, carry-over is just likelier on the dense pick.
            let u = graph.vertices().find(|&u| graph.degree(u) + 1 < graph.num_vertices());
            let u = u.expect("graph is not complete");
            let v = graph.vertices().find(|&v| v != u && !graph.has_edge(u, v)).unwrap();
            (u, v)
        })
    };
    let report = engine.apply_updates(&[GraphDelta::insert_edge(u, v)]).unwrap();
    assert_eq!(report.generation, 2);

    let fresh = Engine::new(engine.graph());
    for (request, old) in queries.iter().zip(&before) {
        let live = engine.execute(request).unwrap();
        let rebuilt = fresh.execute(request).unwrap();
        assert_eq!(live.result, rebuilt.result, "carried cache must not change answers");
        assert_eq!(live.meta.generation, 2);
        assert_eq!(live.meta.cache_carried, report.cache_carried);
        let _ = old; // answers *may* legitimately change: the graph changed.
    }
}
