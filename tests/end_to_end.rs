//! End-to-end integration tests spanning all workspace crates: dataset
//! generation → index construction → queries → metrics, checked against the
//! problem definition and against independent implementations.

use attributed_community_search::baselines::{global_community, local_community};
use attributed_community_search::cltree::{build_advanced, build_basic};
use attributed_community_search::datagen;
use attributed_community_search::kcore::CoreDecomposition;
use attributed_community_search::metrics;
use attributed_community_search::prelude::*;
use std::sync::Arc;

fn generated_graph() -> AttributedGraph {
    datagen::generate(&datagen::tiny())
}

/// The façade's quick-start path, as shown in the crate-level doctest: build
/// the paper's Figure 3 graph through the prelude alone and run the default
/// request. Pins the `prelude` re-exports (graph, engine, request, index
/// types) as a plain integration test so an accidental re-export removal
/// fails even when doctests are skipped.
#[test]
fn prelude_quick_start_smoke_test() {
    let graph = Arc::new(paper_figure3_graph());
    let engine = Engine::new(Arc::clone(&graph));
    let q = graph.vertex_by_label("A").expect("Figure 3 has a vertex A");

    let response = engine.execute(&Request::community(q).k(2)).expect("valid request");
    let ac = &response.communities()[0];
    assert_eq!(ac.member_names(&graph), vec!["A", "C", "D"]);
    assert_eq!(ac.label_terms(&graph), vec!["x", "y"]);

    // Index types from the prelude: both builders produce the same CL-tree.
    let basic: ClTree = build_basic(&graph, true);
    let advanced: ClTree = build_advanced(&graph, true);
    assert_eq!(basic.canonical_form(), advanced.canonical_form());

    // Core decomposition and subsets from the prelude.
    let decomposition = CoreDecomposition::compute(&graph);
    assert!(decomposition.core_number(q) >= 2);
    let full = VertexSubset::full(graph.num_vertices());
    assert!(full.contains(q));
}

#[test]
fn full_pipeline_on_generated_dataset() {
    let graph = Arc::new(generated_graph());
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 20, 4, 1);
    assert!(!queries.is_empty(), "the tiny profile must support k=4 queries");

    for &q in &queries {
        let response = engine.execute(&Request::community(q).k(4)).expect("valid request");
        for community in response.communities() {
            // Problem 1: connectivity, membership of q, minimum degree, shared label.
            let subset =
                VertexSubset::from_iter(graph.num_vertices(), community.vertices.iter().copied());
            assert!(subset.contains(q));
            assert!(subset.is_connected(&graph));
            for &v in &community.vertices {
                assert!(subset.degree_within(&graph, v) >= 4);
                for &kw in &community.label {
                    assert!(graph.keyword_set(v).contains(kw));
                }
            }
        }
    }
}

#[test]
fn all_algorithms_agree_on_generated_dataset() {
    let graph = Arc::new(generated_graph());
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 10, 4, 2);
    for &q in &queries {
        let reference = engine
            .execute(&Request::community(q).k(4).algorithm(AcqAlgorithm::BasicG))
            .unwrap()
            .canonical();
        for algorithm in AcqAlgorithm::ALL {
            let response =
                engine.execute(&Request::community(q).k(4).algorithm(algorithm)).unwrap();
            assert_eq!(response.canonical(), reference, "algorithm {}", algorithm.name());
        }
    }
}

#[test]
fn both_index_builders_agree_on_generated_dataset() {
    let graph = generated_graph();
    let basic = build_basic(&graph, true);
    let advanced = build_advanced(&graph, true);
    basic.validate(&graph).unwrap();
    advanced.validate(&graph).unwrap();
    assert_eq!(basic.canonical_form(), advanced.canonical_form());
}

#[test]
fn acq_is_contained_in_the_kcore_and_more_cohesive() {
    let graph = Arc::new(generated_graph());
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 15, 4, 3);
    let mut acq_cmf = Vec::new();
    let mut global_cmf = Vec::new();
    for &q in &queries {
        let result = engine.execute(&Request::community(q).k(4)).unwrap().result;
        let Some(kcore) = global_community(&graph, q, 4) else { continue };
        let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
        for community in &result.communities {
            // The AC is a subgraph of the k-ĉore containing q.
            for &v in &community.vertices {
                assert!(kcore.contains(v), "AC member outside the k-ĉore");
            }
        }
        if result.label_size > 0 {
            let acq_communities: Vec<Vec<VertexId>> =
                result.communities.iter().map(|c| c.vertices.clone()).collect();
            acq_cmf.push(metrics::cmf(&graph, &acq_communities, &wq));
            global_cmf.push(metrics::cmf(&graph, &[kcore.sorted_members()], &wq));
        }
    }
    assert!(!acq_cmf.is_empty(), "at least some queries must produce labelled ACs");
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&acq_cmf) >= mean(&global_cmf),
        "ACQ keyword cohesion {:.3} should not be below the plain k-core's {:.3}",
        mean(&acq_cmf),
        mean(&global_cmf)
    );
}

#[test]
fn local_and_global_baselines_agree_on_existence() {
    let graph = generated_graph();
    let decomposition = CoreDecomposition::compute(&graph);
    let queries = datagen::select_query_vertices(&graph, &decomposition, 20, 1, 4);
    for &q in &queries {
        for k in 2..=5usize {
            let g = global_community(&graph, q, k);
            let l = local_community(&graph, q, k);
            assert_eq!(g.is_some(), l.is_some(), "q={q:?} k={k}");
            if let (Some(g), Some(l)) = (g, l) {
                for v in l.iter() {
                    assert!(g.contains(v), "Local must be contained in Global");
                }
            }
        }
    }
}

#[test]
fn index_survives_serialisation_and_maintenance_roundtrip() {
    let graph = generated_graph();
    let index = build_advanced(&graph, true);
    // Serialise and restore.
    let json = serde_json::to_string(&index).expect("serialisable");
    let restored: ClTree = serde_json::from_str(&json).expect("deserialisable");
    restored.validate(&graph).unwrap();

    // Apply an edge update to the restored index and compare with a rebuild.
    let u = VertexId(0);
    let v = graph
        .vertices()
        .find(|&v| v != u && !graph.has_edge(u, v))
        .expect("some non-adjacent pair exists");
    let updated_graph = graph.with_edge_inserted(u, v).unwrap();
    let maintained = attributed_community_search::cltree::maintenance::apply_edge_insertion(
        &restored,
        &updated_graph,
        u,
        v,
    );
    maintained.validate(&updated_graph).unwrap();
    assert_eq!(maintained.canonical_form(), build_advanced(&updated_graph, true).canonical_form());
}

#[test]
fn graph_io_roundtrip_preserves_query_results() {
    let graph = generated_graph();
    let mut edges = Vec::new();
    let mut keywords = Vec::new();
    attributed_community_search::graph::io::write_text(&graph, &mut edges, &mut keywords).unwrap();
    let reloaded =
        attributed_community_search::graph::io::read_text(edges.as_slice(), keywords.as_slice())
            .unwrap();
    assert_eq!(reloaded.num_vertices(), graph.num_vertices());
    assert_eq!(reloaded.num_edges(), graph.num_edges());

    // Query the same (relabelled) vertex in both graphs and compare answers by
    // member label.
    let graph = Arc::new(graph);
    let reloaded = Arc::new(reloaded);
    let engine_a = Engine::new(Arc::clone(&graph));
    let engine_b = Engine::new(Arc::clone(&reloaded));
    let decomposition = engine_a.index().decomposition().clone();
    let q_a = datagen::select_query_vertices(&graph, &decomposition, 1, 4, 5)
        .into_iter()
        .next()
        .expect("workload non-empty");
    let label = graph.label(q_a).unwrap();
    let q_b = reloaded.vertex_by_label(label).unwrap();
    let result_a = engine_a.execute(&Request::community(q_a).k(4)).unwrap().result;
    let result_b = engine_b.execute(&Request::community(q_b).k(4)).unwrap().result;
    assert_eq!(result_a.label_size, result_b.label_size);
    let names = |graph: &AttributedGraph, r: &AcqResult| -> Vec<Vec<String>> {
        let mut all: Vec<Vec<String>> =
            r.communities.iter().map(|c| c.member_names(graph)).collect();
        for names in &mut all {
            names.sort();
        }
        all.sort();
        all
    };
    assert_eq!(names(&graph, &result_a), names(&reloaded, &result_b));
}

/// The two executors through the prelude: a generated dataset is queried once
/// through the owning `Engine` and once through a multi-threaded
/// `BatchEngine`, and the communities must be identical (including the work
/// counters). Also pins the prelude re-exports of `Engine`, `Executor`,
/// `BatchEngine`, `CacheStats` and `SharedDecomposition`.
#[test]
fn both_executors_agree_end_to_end() {
    let graph = Arc::new(generated_graph());
    let batch_engine = BatchEngine::new(Arc::clone(&graph)).with_threads(4);
    let sequential = Engine::builder(Arc::clone(&graph))
        .index(Arc::clone(batch_engine.index()))
        .cache_capacity(0)
        .threads(1)
        .build();

    // The decomposition handle is shared, not recomputed.
    let decomposition: &SharedDecomposition = batch_engine.decomposition();
    let requests: Vec<Request> = graph
        .vertices()
        .filter(|&v| decomposition.core_number(v) >= 3)
        .take(12)
        .map(|v| Request::community(v).k(3))
        .collect();
    assert!(!requests.is_empty(), "generated graph has a 3-core");

    let batched = batch_engine.execute_batch(&requests);
    for (request, response) in requests.iter().zip(&batched) {
        let expected = sequential.execute(request).map(|r| r.result);
        assert_eq!(
            response.as_ref().map(|r| r.result.clone()).map_err(Clone::clone),
            expected,
            "batch must equal sequential"
        );
    }

    // Running the same batch again is answered (partly) from the cache and
    // still returns identical communities.
    let again = batch_engine.execute_batch(&requests);
    for (first, second) in batched.iter().zip(&again) {
        assert_eq!(
            first.as_ref().map(|r| r.result.clone()),
            second.as_ref().map(|r| r.result.clone())
        );
    }
    let stats: CacheStats = batch_engine.cache_stats();
    assert!(stats.hits > 0, "repeated batch must hit the shared cache: {stats:?}");
}
