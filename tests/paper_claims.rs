//! Integration tests that pin down the paper's *qualitative* claims on the
//! synthetic datasets — the properties the experiments in EXPERIMENTS.md rely
//! on. These are coarser than unit tests: each one runs a small workload and
//! checks a direction ("ACQ is more keyword-cohesive than Global", "Advanced
//! builds faster than Basic", "Dec never returns a worse label than Inc-S").

use attributed_community_search::baselines::{global_community, Codicil, CodicilConfig};
use attributed_community_search::cltree::{build_advanced, build_basic};
use attributed_community_search::datagen;
use attributed_community_search::metrics;
use attributed_community_search::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn dataset() -> Arc<AttributedGraph> {
    Arc::new(datagen::generate(&datagen::dblp().scaled(0.25)))
}

#[test]
fn claim_acs_share_keywords_and_get_more_cohesive_with_longer_labels() {
    // Figure 7's direction: a longer AC-label implies higher CPJ.
    let graph = dataset();
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 40, 4, 9);
    let mut by_label_len: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for &q in &queries {
        let result = engine.execute(&Request::community(q).k(4)).unwrap().result;
        if result.label_size == 0 || result.label_size > 5 {
            continue;
        }
        let communities: Vec<Vec<VertexId>> =
            result.communities.iter().map(|c| c.vertices.clone()).collect();
        by_label_len[result.label_size].push(metrics::cpj(&graph, &communities));
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    // Compare the shortest and longest populated buckets.
    let populated: Vec<usize> = (1..=5).filter(|&l| !by_label_len[l].is_empty()).collect();
    if populated.len() >= 2 {
        let first = *populated.first().unwrap();
        let last = *populated.last().unwrap();
        assert!(
            mean(&by_label_len[last]) >= mean(&by_label_len[first]) * 0.9,
            "CPJ should not degrade as the AC-label grows: len {first} -> {:.3}, len {last} -> {:.3}",
            mean(&by_label_len[first]),
            mean(&by_label_len[last])
        );
    }
}

#[test]
fn claim_acq_is_more_keyword_cohesive_than_structure_only_and_detection_baselines() {
    // Figures 8 and 9: CMF(ACQ) beats CMF(Global) and CMF(CODICIL).
    let graph = dataset();
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 30, 4, 7);
    let codicil = Codicil::detect(
        &graph,
        &CodicilConfig { num_clusters: graph.num_vertices() / 40, ..Default::default() },
    );
    let (mut acq, mut global, mut detection) = (Vec::new(), Vec::new(), Vec::new());
    for &q in &queries {
        let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
        let result = engine.execute(&Request::community(q).k(4)).unwrap().result;
        if result.label_size == 0 {
            continue;
        }
        let communities: Vec<Vec<VertexId>> =
            result.communities.iter().map(|c| c.vertices.clone()).collect();
        acq.push(metrics::cmf(&graph, &communities, &wq));
        if let Some(core) = global_community(&graph, q, 4) {
            global.push(metrics::cmf(&graph, &[core.sorted_members()], &wq));
        }
        detection.push(metrics::cmf(
            &graph,
            &[codicil.community_of(&graph, q).sorted_members()],
            &wq,
        ));
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    assert!(!acq.is_empty());
    assert!(
        mean(&acq) > mean(&global),
        "CMF: ACQ {:.3} must beat Global {:.3}",
        mean(&acq),
        mean(&global)
    );
    assert!(
        mean(&acq) > mean(&detection),
        "CMF: ACQ {:.3} must beat the detection baseline {:.3}",
        mean(&acq),
        mean(&detection)
    );
}

#[test]
fn claim_acq_communities_are_much_smaller_than_global_kcores() {
    // Figure 12 / Table 4 direction: the AC is a focused subset of the k-core.
    let graph = dataset();
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 25, 4, 11);
    let mut acq_sizes = Vec::new();
    let mut global_sizes = Vec::new();
    for &q in &queries {
        let result = engine.execute(&Request::community(q).k(4)).unwrap().result;
        if result.label_size == 0 {
            continue;
        }
        for c in &result.communities {
            acq_sizes.push(c.len() as f64);
        }
        if let Some(core) = global_community(&graph, q, 4) {
            global_sizes.push(core.len() as f64);
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    assert!(!acq_sizes.is_empty());
    assert!(
        mean(&acq_sizes) < mean(&global_sizes),
        "average AC size {:.1} should be below the average k-ĉore size {:.1}",
        mean(&acq_sizes),
        mean(&global_sizes)
    );
}

#[test]
fn claim_advanced_construction_is_not_slower_than_basic() {
    // Figure 13's direction, measured crudely (wall clock over a few runs).
    let graph = datagen::generate(&datagen::tencent().scaled(0.3));
    let runs = 3;
    let time = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let mut sink = 0;
        for _ in 0..runs {
            sink += f();
        }
        (start.elapsed().as_secs_f64(), sink)
    };
    let (basic_time, a) = time(&|| build_basic(&graph, true).num_nodes());
    let (advanced_time, b) = time(&|| build_advanced(&graph, true).num_nodes());
    assert_eq!(a, b, "both builders agree on the node count");
    // Generous slack: the claim is only that advanced is not substantially
    // slower; on deep-core graphs it is typically much faster.
    assert!(
        advanced_time <= basic_time * 1.5,
        "advanced {advanced_time:.3}s should not be slower than basic {basic_time:.3}s by >50%"
    );
}

#[test]
fn claim_dec_and_incremental_algorithms_return_maximal_labels() {
    // Section 6's guarantee: Dec (top-down) and Inc-S/Inc-T (bottom-up) agree
    // on the maximal label size for every query.
    let graph = dataset();
    let engine = Engine::new(Arc::clone(&graph));
    let decomposition = engine.index().decomposition().clone();
    let queries = datagen::select_query_vertices(&graph, &decomposition, 20, 4, 13);
    for &q in &queries {
        let request = Request::community(q).k(4);
        let dec = engine.execute(&request.clone().algorithm(AcqAlgorithm::Dec)).unwrap().result;
        let inc_s = engine.execute(&request.clone().algorithm(AcqAlgorithm::IncS)).unwrap().result;
        let inc_t = engine.execute(&request.algorithm(AcqAlgorithm::IncT)).unwrap().result;
        assert_eq!(dec.label_size, inc_s.label_size);
        assert_eq!(dec.label_size, inc_t.label_size);
    }
}

#[test]
fn claim_gpm_star_queries_collapse_as_keyword_sets_grow() {
    // Table 7's direction: the match rate is non-increasing in |S|.
    use attributed_community_search::baselines::{star_pattern_has_match, StarPatternQuery};
    let graph = dataset();
    let decomposition = CoreDecomposition::compute(&graph);
    let queries =
        datagen::select_query_vertices_with_keywords(&graph, &decomposition, 30, 4, 5, 17);
    let rate = |s_size: usize| -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for &q in &queries {
            let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
            if wq.len() < s_size {
                continue;
            }
            let query = StarPatternQuery { vertex: q, leaves: 6, keywords: wq[..s_size].to_vec() };
            if star_pattern_has_match(&graph, &query) {
                hits += 1;
            }
            total += 1;
        }
        hits as f64 / total.max(1) as f64
    };
    assert!(rate(1) >= rate(3));
    assert!(rate(3) >= rate(5));
}
