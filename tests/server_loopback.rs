//! Loopback tests for the serving front-end: concurrent remote clients must
//! get **byte-identical** results to direct in-process `Executor` calls —
//! including while a write stream mutates the graph through the transactor —
//! and malformed or oversize frames must draw an error frame without ever
//! taking the server down.
//!
//! The write-stream phase cannot compare against a live local engine (the
//! compared generation could advance mid-query), so it records each
//! response's `meta.generation` and afterwards **replays** the same delta
//! batches on a fresh engine, re-executing every recorded request at its
//! recorded generation. The transactor serializes all writes, so generation
//! `1 + i` deterministically means "the initial graph plus the first `i`
//! batches".

use attributed_community_search::prelude::*;
use attributed_community_search::server::{
    codes, encode, read_frame, Client, ClientError, Frame, FrameKind, Server, WireError,
    DEFAULT_MAX_FRAME_LEN,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Serialises the part of a response that must match across executors. The
/// result (communities, label size, work counters) is deterministic for a
/// given graph generation; `meta` (wall time, cache hits) is not.
fn result_bytes(response: &Response) -> String {
    serde_json::to_string(&response.result).expect("result serialises")
}

/// A spread of requests covering all three query kinds on the Figure 3 graph.
fn request_mix(graph: &AttributedGraph) -> Vec<Request> {
    let kw = graph.dictionary().iter().next().map(|(id, _)| id).expect("keywords exist");
    let mut requests = Vec::new();
    for v in graph.vertices() {
        for k in [1usize, 2, 3] {
            requests.push(Request::community(v).k(k));
        }
        requests.push(Request::community(v).k(2).exact_keywords([kw]));
        requests.push(Request::community(v).k(2).keywords([kw]).threshold(0.5));
    }
    requests
}

#[test]
fn concurrent_clients_match_the_direct_executor() {
    let graph = Arc::new(paper_figure3_graph());
    let engine = Arc::new(Engine::new(Arc::clone(&graph)));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine) as _, ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    let requests = Arc::new(request_mix(&graph));
    let mut clients = Vec::new();
    for t in 0..4 {
        let requests = Arc::clone(&requests);
        clients.push(std::thread::spawn(move || -> Vec<String> {
            let mut client = Client::connect(addr).expect("connect");
            if t % 2 == 0 {
                // Half the clients go one query at a time…
                requests
                    .iter()
                    .map(|r| result_bytes(&client.query(r).expect("query answered")))
                    .collect()
            } else {
                // …the other half pipeline the whole mix as one batch.
                client
                    .query_batch(&requests)
                    .expect("batch answered")
                    .into_iter()
                    .map(|r| result_bytes(&r.expect("batched query answered")))
                    .collect()
            }
        }));
    }
    let remote: Vec<Vec<String>> = clients.into_iter().map(|c| c.join().expect("client")).collect();

    // The reference: a second, independent in-process engine on the same graph.
    let reference = Engine::new(Arc::clone(&graph));
    let expected: Vec<String> = requests
        .iter()
        .map(|r| result_bytes(&reference.execute(r).expect("direct execute")))
        .collect();
    for per_client in &remote {
        assert_eq!(per_client, &expected, "remote results must be byte-identical");
    }

    // An invalid request draws the same error text the direct call produces.
    let bogus = Request::community(VertexId(99)).k(2);
    let direct_err = reference.execute(&bogus).expect_err("vertex 99 does not exist");
    let mut client = Client::connect(addr).expect("connect");
    match client.query(&bogus) {
        Err(ClientError::Remote(wire)) => {
            assert_eq!(wire.code, codes::INVALID_QUERY);
            assert_eq!(wire.message, direct_err.to_string());
        }
        other => panic!("expected a remote invalid-query error, got {other:?}"),
    }

    let snapshot = server.metrics_snapshot();
    assert!(snapshot.server.queries_served >= 4 * requests.len() as u64);
    assert!(snapshot.server.batches_executed > 0);
    assert_eq!(snapshot.server.query_errors, 1);
    assert!(
        snapshot.cache.hits + snapshot.cache.misses > 0,
        "the shared engine cache must have seen traffic"
    );
    server.shutdown();
}

#[test]
fn queries_under_a_write_stream_replay_byte_identical() {
    let graph = Arc::new(paper_figure3_graph());
    let engine = Arc::new(Engine::new(graph));
    let server =
        Server::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();

    // Six delta batches: edge churn around the paper's 3-core clique plus
    // keyword churn on E — enough to drive several maintenance strategies.
    let batches: Vec<Vec<GraphDelta>> = vec![
        vec![GraphDelta::InsertEdge { u: VertexId(4), v: VertexId(3) }],
        vec![GraphDelta::AddKeyword { vertex: VertexId(4), term: "y".to_string() }],
        vec![
            GraphDelta::RemoveEdge { u: VertexId(4), v: VertexId(3) },
            GraphDelta::InsertEdge { u: VertexId(5), v: VertexId(0) },
        ],
        vec![GraphDelta::RemoveKeyword { vertex: VertexId(4), term: "y".to_string() }],
        vec![GraphDelta::InsertVertex { label: None, keywords: vec!["x".to_string()] }],
        vec![GraphDelta::RemoveEdge { u: VertexId(5), v: VertexId(0) }],
    ];

    // The writer: one client streaming the batches through the transactor.
    let writer = {
        let batches = batches.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            for (i, batch) in batches.iter().enumerate() {
                let report = client.update(batch).expect("update applied");
                assert_eq!(report.generation, 2 + i as u64, "writes are serialized in order");
                std::thread::sleep(Duration::from_millis(15));
            }
        })
    };

    // The readers: query continuously while the writes land, recording the
    // generation each response was served from.
    let mut readers = Vec::new();
    for t in 0..3u32 {
        readers.push(std::thread::spawn(move || -> Vec<(Request, u64, String)> {
            let mut client = Client::connect(addr).expect("reader connects");
            let mut seen = Vec::new();
            for round in 0..40u32 {
                let v = VertexId((t + round) % 10);
                let request = Request::community(v).k(1 + (round % 3) as usize);
                let response = client.query(&request).expect("query answered");
                seen.push((request, response.meta.generation, result_bytes(&response)));
                std::thread::sleep(Duration::from_millis(2));
            }
            seen
        }));
    }
    writer.join().expect("writer");
    let mut records: Vec<(Request, u64, String)> =
        readers.into_iter().flat_map(|r| r.join().expect("reader")).collect();

    // One last query after the writer finished: it is guaranteed to run on
    // the final generation, so the replay below always covers the full range.
    {
        let mut client = Client::connect(addr).expect("late reader connects");
        let request = Request::community(VertexId(0)).k(2);
        let response = client.query(&request).expect("query answered");
        assert_eq!(response.meta.generation, 1 + batches.len() as u64);
        records.push((request, response.meta.generation, result_bytes(&response)));
    }
    server.shutdown();

    // Replay: rebuild the exact generation sequence and re-execute every
    // recorded request at its recorded generation.
    let replay = Engine::new(Arc::new(paper_figure3_graph()));
    let generations: Vec<u64> = records.iter().map(|(_, g, _)| *g).collect();
    assert!(generations.iter().all(|g| (1..=7).contains(g)), "generations stay in range");
    assert!(
        generations.iter().max().copied() > Some(1),
        "the write stream should be visible to the readers"
    );
    for gen in 1..=(1 + batches.len() as u64) {
        for (request, _, remote_bytes) in records.iter().filter(|(_, g, _)| *g == gen) {
            let local = replay.execute(request).expect("replay execute");
            assert_eq!(local.meta.generation, gen);
            assert_eq!(
                &result_bytes(&local),
                remote_bytes,
                "generation {gen}: remote result differs from the replayed engine"
            );
        }
        if gen <= batches.len() as u64 {
            let report =
                replay.apply_updates(&batches[gen as usize - 1]).expect("replay batch applies");
            assert_eq!(report.generation, gen + 1);
        }
    }
}

#[test]
fn a_restarted_durable_server_answers_byte_identical_to_an_unrestarted_one() {
    let dir = std::env::temp_dir().join(format!("acq-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = Arc::new(paper_figure3_graph());

    // Writes the restart must preserve: edge and keyword churn plus a new
    // vertex, with a cadence that makes compaction fold some batches into
    // the snapshot while others stay in the log as replayable records.
    let batches: Vec<Vec<GraphDelta>> = vec![
        vec![GraphDelta::InsertEdge { u: VertexId(4), v: VertexId(3) }],
        vec![GraphDelta::AddKeyword { vertex: VertexId(4), term: "y".to_string() }],
        vec![GraphDelta::InsertVertex { label: None, keywords: vec!["x".to_string()] }],
        vec![GraphDelta::InsertEdge { u: VertexId(5), v: VertexId(0) }],
        vec![GraphDelta::RemoveKeyword { vertex: VertexId(4), term: "y".to_string() }],
    ];
    let options = DurableOptions { compact_every: 3, ..DurableOptions::default() };

    // Phase 1: a durable server takes the writes, answers some queries, and
    // shuts down cleanly.
    let first_run: Vec<String> = {
        let (durable, report) =
            DurableEngine::open_dir(&dir, Arc::clone(&base), options).expect("open durable dir");
        assert_eq!(report.records_replayed, 0, "a fresh directory has nothing to replay");
        let server =
            Server::bind_durable("127.0.0.1:0", Arc::new(durable), ServerConfig::default())
                .expect("bind durable loopback");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for (i, batch) in batches.iter().enumerate() {
            let report = client.update(batch).expect("durable update acknowledged");
            assert_eq!(report.generation, 2 + i as u64);
        }
        let answers = request_mix(&base)
            .iter()
            .map(|r| result_bytes(&client.query(r).expect("query answered")))
            .collect();
        let snapshot = server.metrics_snapshot();
        let durability = snapshot.durability.expect("durable server exports durability counters");
        assert_eq!(durability.log_records_appended, batches.len() as u64);
        assert!(durability.log_bytes_appended > 0);
        assert!(durability.compactions >= 1, "compact_every=3 over 5 batches must compact");
        server.shutdown();
        answers
    };

    // Phase 2: a new process image opens the same directory. Recovery loads
    // the snapshot and replays only the records it does not cover.
    let restarted: Vec<String> = {
        let (durable, report) =
            DurableEngine::open_dir(&dir, Arc::clone(&base), options).expect("reopen durable dir");
        assert!(report.snapshot_loaded, "compaction installed a snapshot");
        assert!(
            report.records_replayed > 0 && report.records_replayed < batches.len() as u64,
            "replay should cover exactly the post-snapshot records, got {}",
            report.records_replayed
        );
        assert_eq!(report.batches_skipped, 0);
        let server =
            Server::bind_durable("127.0.0.1:0", Arc::new(durable), ServerConfig::default())
                .expect("rebind durable loopback");
        let mut client = Client::connect(server.local_addr()).expect("reconnect");
        let answers = request_mix(&base)
            .iter()
            .map(|r| result_bytes(&client.query(r).expect("query answered after restart")))
            .collect();
        let snapshot = server.metrics_snapshot();
        let durability = snapshot.durability.expect("durability counters after restart");
        assert!(durability.records_replayed > 0);
        server.shutdown();
        answers
    };

    // The reference: an engine that never restarted — it simply applied
    // every acknowledged batch in order.
    let reference = Engine::new(Arc::clone(&base));
    for batch in &batches {
        reference.apply_updates(batch).expect("reference applies");
    }
    let expected: Vec<String> = request_mix(&base)
        .iter()
        .map(|r| result_bytes(&reference.execute(r).expect("reference executes")))
        .collect();
    assert_eq!(first_run, expected, "pre-restart durable answers diverged");
    assert_eq!(restarted, expected, "post-restart answers must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

/// One long-lived server for the malformed-frame tests: `max_frame_len` is
/// tiny so oversize rejection is cheap to trigger. A `static` handle is never
/// dropped, so the server outlives every test in the binary.
static FUZZ_SERVER: OnceLock<attributed_community_search::server::ServerHandle> = OnceLock::new();

fn fuzz_addr() -> SocketAddr {
    FUZZ_SERVER
        .get_or_init(|| {
            let engine = Arc::new(Engine::new(Arc::new(paper_figure3_graph())));
            let config =
                ServerConfig { accept_threads: 2, max_frame_len: 4096, ..Default::default() };
            Server::bind("127.0.0.1:0", engine, config).expect("bind fuzz server")
        })
        .local_addr()
}

/// Reads one frame from a raw stream, with a timeout so a server bug cannot
/// hang the suite.
fn recv_raw(stream: &TcpStream) -> Result<Option<Frame>, String> {
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    read_frame(&mut { stream }, DEFAULT_MAX_FRAME_LEN).map_err(|e| e.to_string())
}

fn expect_error_frame(stream: &TcpStream, code: &str) -> Frame {
    let frame = recv_raw(stream).expect("readable frame").expect("a frame, not EOF");
    assert_eq!(frame.kind, FrameKind::Error);
    let wire: WireError =
        serde_json::from_str(std::str::from_utf8(&frame.payload).expect("UTF-8 payload"))
            .expect("WireError payload");
    assert_eq!(wire.code, code, "unexpected error: {}", wire.message);
    frame
}

fn server_is_alive() {
    let mut probe = Client::connect(fuzz_addr()).expect("fresh connection accepted");
    probe.ping().expect("server still answers");
}

#[test]
fn malformed_frames_draw_errors_and_the_connection_survives() {
    let addr = fuzz_addr();

    // An unknown kind byte: the block is consumed whole, so the connection
    // keeps working afterwards.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut unknown = encode(&Frame::control(FrameKind::Ping, 7));
    unknown[5] = 0x55;
    stream.write_all(&unknown).expect("write");
    let err = expect_error_frame(&stream, codes::UNKNOWN_KIND);
    assert_eq!(err.request_id, 7, "the reply correlates to the offending frame");
    stream.write_all(&encode(&Frame::control(FrameKind::Ping, 8))).expect("write after error");
    let pong = recv_raw(&stream).expect("frame").expect("pong");
    assert_eq!((pong.kind, pong.request_id), (FrameKind::Pong, 8));

    // Garbage JSON in a Query payload: error frame, connection survives.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&encode(&Frame::new(FrameKind::Query, 9, b"not json".to_vec())))
        .expect("write");
    expect_error_frame(&stream, codes::MALFORMED_PAYLOAD);
    stream.write_all(&encode(&Frame::control(FrameKind::Ping, 10))).expect("write after error");
    assert_eq!(recv_raw(&stream).expect("frame").expect("pong").kind, FrameKind::Pong);

    // A response-only kind from a client: answered, connection survives.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&encode(&Frame::control(FrameKind::Pong, 11))).expect("write");
    expect_error_frame(&stream, codes::UNKNOWN_KIND);

    server_is_alive();
}

#[test]
fn oversize_and_unframeable_input_close_the_connection_cleanly() {
    let addr = fuzz_addr();

    // Length prefix over the 4096-byte bound: rejected before any payload
    // byte is read, then the connection closes.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&100_000u32.to_be_bytes()).expect("write");
    expect_error_frame(&stream, codes::OVERSIZE_FRAME);
    assert!(recv_raw(&stream).expect("clean close").is_none(), "connection must close");

    // Length prefix below the envelope size.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&3u32.to_be_bytes()).expect("write");
    expect_error_frame(&stream, codes::MALFORMED_FRAME);
    assert!(recv_raw(&stream).expect("clean close").is_none());

    // A version byte from the future.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut bad = encode(&Frame::control(FrameKind::Ping, 1));
    bad[4] = 9;
    stream.write_all(&bad).expect("write");
    expect_error_frame(&stream, codes::UNSUPPORTED_VERSION);
    assert!(recv_raw(&stream).expect("clean close").is_none());

    server_is_alive();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes — valid prefixes, truncated frames, garbage — must
    /// never take the server down: after each blast, a fresh connection
    /// still answers a ping.
    #[test]
    fn arbitrary_bytes_never_kill_the_server(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let stream = TcpStream::connect(fuzz_addr()).expect("connect");
        {
            let mut w = &stream;
            let _ = w.write_all(&bytes);
        }
        let _ = stream.shutdown(Shutdown::Write);
        // Drain whatever the server answers (error frame or clean close)
        // until EOF, so the blast is fully processed before the liveness probe.
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        let mut r = &stream;
        let mut sink = [0u8; 256];
        while let Ok(n) = std::io::Read::read(&mut r, &mut sink) {
            if n == 0 { break; }
        }
        server_is_alive();
    }

    /// A structurally valid Query/Update frame with an arbitrary payload is
    /// answered (ok or error) and the connection survives to ping again.
    #[test]
    fn garbage_payloads_are_answered_not_fatal(
        is_update in 0u32..2,
        payload in proptest::collection::vec(0u8..=255, 0..48),
    ) {
        let kind = if is_update == 1 { FrameKind::Update } else { FrameKind::Query };
        let mut stream = TcpStream::connect(fuzz_addr()).expect("connect");
        stream.write_all(&encode(&Frame::new(kind, 21, payload))).expect("write");
        let reply = recv_raw(&stream).expect("frame").expect("an answer");
        prop_assert_eq!(reply.request_id, 21);
        prop_assert!(matches!(
            reply.kind,
            FrameKind::Error | FrameKind::QueryOk | FrameKind::UpdateOk
        ));
        stream.write_all(&encode(&Frame::control(FrameKind::Ping, 22))).expect("write");
        let pong = recv_raw(&stream).expect("frame").expect("pong");
        prop_assert_eq!(pong.kind, FrameKind::Pong);
    }
}

/// Slow-loris defense: a client that connects and sends nothing must be
/// reaped by the socket read timeout — `acq_timeouts` increments, the idle
/// socket sees EOF, and the server keeps serving everyone else.
#[test]
fn a_silent_connection_is_reaped_by_the_read_timeout() {
    let engine = Arc::new(Engine::new(Arc::new(paper_figure3_graph())));
    let config = ServerConfig { read_timeout_ms: 100, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", engine, config).expect("bind loopback");
    let addr = server.local_addr();

    // The slow loris: connect, say nothing.
    let loris = TcpStream::connect(addr).expect("connect silent client");

    // A well-behaved probe on its own connection watches the counter.
    let mut probe = Client::connect(addr).expect("connect probe");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = probe.metrics().expect("metrics");
        if snapshot.server.timeouts >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "read timeout never fired; acq_timeouts stayed at {}",
            snapshot.server.timeouts
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The reaped socket is closed server-side: the loris reads EOF.
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("set probe timeout");
    let mut eof = [0u8; 1];
    let n = std::io::Read::read(&mut { &loris }, &mut eof).expect("read after reap");
    assert_eq!(n, 0, "the server must have closed the silent connection");

    // Reaping one idle connection must not disturb live ones.
    probe.ping().expect("server still serves after reaping the loris");
    server.shutdown();
}
