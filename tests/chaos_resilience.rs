//! End-to-end resilience under network chaos.
//!
//! A retrying client drives a durable server through a [`ChaosProxy`] that
//! tears connections mid-frame, swallows traffic one-way, and injects
//! latency on a fixed seeded schedule. The acceptance property: despite the
//! chaos, the run is indistinguishable from a perfect network —
//!
//! * every update is applied **exactly once** (generations advance by
//!   exactly one per logical write, even when an `UpdateOk` was lost after
//!   the server applied the batch and the client had to retry);
//! * every `UpdateOk` the client observes is byte-identical to the one a
//!   fault-free run produces;
//! * the final graph is byte-identical to a reference engine that applied
//!   each batch once;
//! * and the dedup window demonstrably did the saving (`acq_dedup_hits > 0`
//!   — the CI chaos-smoke job greps for it).

use attributed_community_search::prelude::*;
use attributed_community_search::server::{ChaosConfig, ChaosProxy, ClientConfig, RetryPolicy};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic batch stream: every even batch mints a vertex, every odd
/// batch wires the fresh vertex into the graph. `InsertVertex` is NOT
/// idempotent (it mints a new id each time it applies), so any double-apply
/// anywhere in the run shows up in the final graph bytes.
fn chaos_batches(base_vertices: u32, count: usize) -> Vec<Vec<GraphDelta>> {
    (0..count)
        .map(|i| {
            if i % 2 == 0 {
                let term = format!("chaos{i}");
                vec![GraphDelta::InsertVertex { label: None, keywords: vec![term] }]
            } else {
                let minted = base_vertices + (i as u32) / 2;
                vec![GraphDelta::insert_edge(VertexId(minted), VertexId((i as u32) % 3))]
            }
        })
        .collect()
}

/// A fresh durable server over its own temp dir; returns the handle and the
/// engine clone the assertions read the final graph through.
fn durable_server(tag: &str) -> (ServerHandle, Arc<DurableEngine>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("acq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let base = Arc::new(paper_figure3_graph());
    let (durable, _) =
        DurableEngine::open_dir(&dir, base, DurableOptions::default()).expect("open durable dir");
    let durable = Arc::new(durable);
    let config = ServerConfig { read_timeout_ms: 5_000, ..Default::default() };
    let server = Server::bind_durable("127.0.0.1:0", Arc::clone(&durable), config)
        .expect("bind durable server");
    (server, durable, dir)
}

/// The retrying client configuration the chaos run uses: short read timeout
/// (so one-way partitions resolve quickly), a generous retry budget, and a
/// pinned jitter seed for reproducible backoff.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(1)),
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_secs(1)),
        retry: RetryPolicy {
            max_retries: 50,
            base_backoff_ms: 5,
            max_backoff_ms: 50,
            jitter_seed: 7,
        },
        ..Default::default()
    }
}

#[test]
fn retried_writes_through_chaos_are_exactly_once_and_byte_identical() {
    let batch_count = 20;

    // Reference run: the same batch stream over a perfect network.
    let (clean_server, clean_durable, clean_dir) = durable_server("clean");
    let base_vertices = clean_durable.engine().graph().vertices().count() as u32;
    let batches = chaos_batches(base_vertices, batch_count);
    let clean_reports: Vec<String> = {
        let mut client =
            Client::connect_with_config(clean_server.local_addr(), chaos_client_config())
                .expect("connect clean");
        batches
            .iter()
            .map(|batch| {
                let report = client.update(batch).expect("clean update");
                serde_json::to_string(&report).expect("report serialises")
            })
            .collect()
    };

    // Chaos run: same stream, but every frame crosses the proxy.
    let (chaos_server, chaos_durable, chaos_dir) = durable_server("faulty");
    let proxy = ChaosProxy::start(chaos_server.local_addr(), ChaosConfig { seed: 7, delay_ms: 5 })
        .expect("start chaos proxy");
    let mut client = Client::connect_with_config(proxy.local_addr(), chaos_client_config())
        .expect("connect through proxy");

    for (i, batch) in batches.iter().enumerate() {
        let report = client.update(batch).expect("update must survive the chaos");
        // Exactly-once: the empty-dir server starts at generation 1, so the
        // i-th acknowledged batch lands generation 2 + i — a lost-ack retry
        // that re-applied would skip a generation here.
        assert_eq!(report.generation, 2 + i as u64, "batch {i}: a retry must never double-apply");
        assert_eq!(
            serde_json::to_string(&report).expect("report serialises"),
            clean_reports[i],
            "batch {i}: the chaos-run UpdateOk must be byte-identical to the clean run's"
        );
    }

    // The final graph is byte-identical to the fault-free run's.
    assert_eq!(
        serde_json::to_string(&*chaos_durable.engine().graph()).expect("graph serialises"),
        serde_json::to_string(&*clean_durable.engine().graph()).expect("graph serialises"),
        "chaos must not leave a different graph behind"
    );

    // The chaos was real and the dedup window did the saving. Metrics are
    // read over a direct connection — the proxy stays out of the verdict.
    let stats = client.stats();
    assert!(stats.retries > 0, "the proxy must have forced at least one retry");
    let mut direct =
        Client::connect(chaos_server.local_addr()).expect("connect directly for metrics");
    let snapshot = direct.metrics().expect("metrics");
    assert!(
        snapshot.server.dedup_hits > 0,
        "at least one lost-ack retry must have been answered from the dedup window"
    );
    // The CI chaos-smoke job greps this exact line out of the test output.
    println!("acq_dedup_hits {}", snapshot.server.dedup_hits);
    println!(
        "client retries {} reconnects {} timeouts {}",
        stats.retries, stats.reconnects, stats.timeouts
    );

    drop(proxy);
    chaos_server.shutdown();
    clean_server.shutdown();
    let _ = std::fs::remove_dir_all(chaos_dir);
    let _ = std::fs::remove_dir_all(clean_dir);
}

/// Queries keep working through the same chaos, and a query answered
/// through the proxy matches one answered directly.
#[test]
fn queries_through_chaos_match_direct_answers() {
    let (server, durable, dir) = durable_server("query");
    let proxy = ChaosProxy::start(server.local_addr(), ChaosConfig { seed: 11, delay_ms: 2 })
        .expect("start chaos proxy");
    let request = Request::community(VertexId(0)).k(2);

    let mut direct = Client::connect(server.local_addr()).expect("connect direct");
    let expected = serde_json::to_string(&direct.query(&request).expect("direct query").result)
        .expect("result serialises");

    let mut chaotic = Client::connect_with_config(proxy.local_addr(), chaos_client_config())
        .expect("connect through proxy");
    for round in 0..8 {
        let response = chaotic.query(&request).expect("query must survive the chaos");
        assert_eq!(
            serde_json::to_string(&response.result).expect("result serialises"),
            expected,
            "round {round}: chaos must not change a query's answer"
        );
    }

    drop(proxy);
    drop(durable);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
