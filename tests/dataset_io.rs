//! Integration test: generated datasets survive a round trip through the
//! on-disk text format, and the rebuilt graph supports the same queries.

use attributed_community_search::datagen;
use attributed_community_search::graph::io;
use attributed_community_search::prelude::*;
use std::sync::Arc;

#[test]
fn generated_dataset_roundtrips_through_disk_files() {
    let graph = datagen::generate(&datagen::tiny());
    let dir = std::env::temp_dir().join(format!("acq-io-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let edge_path = dir.join("tiny.edges");
    let keyword_path = dir.join("tiny.keywords");

    {
        let edges = std::fs::File::create(&edge_path).unwrap();
        let keywords = std::fs::File::create(&keyword_path).unwrap();
        io::write_text(&graph, edges, keywords).unwrap();
    }
    let reloaded = io::read_text_files(&edge_path, &keyword_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(reloaded.num_vertices(), graph.num_vertices());
    assert_eq!(reloaded.num_edges(), graph.num_edges());

    // Core decomposition is identical vertex-by-vertex (matched through labels).
    let original_cores = CoreDecomposition::compute(&graph);
    let reloaded_cores = CoreDecomposition::compute(&reloaded);
    for v in graph.vertices() {
        let label = graph.label(v).unwrap();
        let w = reloaded.vertex_by_label(label).unwrap();
        assert_eq!(original_cores.core_number(v), reloaded_cores.core_number(w), "core of {label}");
    }

    // A query through the public engine returns the same community (by label).
    let graph = Arc::new(graph);
    let reloaded = Arc::new(reloaded);
    let engine_a = Engine::new(Arc::clone(&graph));
    let engine_b = Engine::new(Arc::clone(&reloaded));
    let q_a = datagen::select_query_vertices(&graph, &original_cores, 1, 4, 21)
        .into_iter()
        .next()
        .expect("tiny profile supports k=4");
    let q_b = reloaded.vertex_by_label(graph.label(q_a).unwrap()).unwrap();
    let mut names_a = engine_a.execute(&Request::community(q_a).k(4)).unwrap().communities()[0]
        .member_names(&graph);
    let mut names_b = engine_b.execute(&Request::community(q_b).k(4)).unwrap().communities()[0]
        .member_names(&reloaded);
    names_a.sort();
    names_b.sort();
    assert_eq!(names_a, names_b);
}

#[test]
fn json_snapshot_roundtrip_of_generated_dataset() {
    let graph = datagen::generate(&datagen::tiny().with_seed(5));
    let mut buffer = Vec::new();
    io::write_json(&graph, &mut buffer).unwrap();
    let restored = io::read_json(buffer.as_slice()).unwrap();
    assert_eq!(restored.num_vertices(), graph.num_vertices());
    assert_eq!(restored.num_edges(), graph.num_edges());
    for v in graph.vertices().take(50) {
        assert_eq!(restored.keyword_set(v), graph.keyword_set(v));
        assert_eq!(restored.neighbors(v), graph.neighbors(v));
    }
}
