//! Wire-format tests for the unified query API: a [`Request`] and a
//! [`Response`] must survive a JSON round trip unchanged, so a future async
//! front-end can encode queries over the wire and replay recorded responses.

use attributed_community_search::prelude::*;
use std::sync::Arc;

fn figure3() -> (Arc<AttributedGraph>, Engine) {
    let graph = Arc::new(paper_figure3_graph());
    let engine = Engine::new(Arc::clone(&graph));
    (graph, engine)
}

#[test]
fn request_round_trips_through_json_for_every_spec_kind() {
    let (graph, _) = figure3();
    let a = graph.vertex_by_label("A").unwrap();
    let x = graph.dictionary().get("x").unwrap();
    let y = graph.dictionary().get("y").unwrap();

    let requests = vec![
        Request::community(a).k(2),
        Request::community(a).k(3).keywords([x, y]).algorithm(AcqAlgorithm::IncT),
        Request::community(a).k(2).exact_keywords([x]),
        Request::community(a).k(2).keywords([x, y]).threshold(0.5),
    ];
    for request in requests {
        let json = serde_json::to_string(&request).expect("serialisable");
        let restored: Request = serde_json::from_str(&json).expect("deserialisable");
        assert_eq!(restored, request, "round trip must be lossless: {json}");
    }
}

#[test]
fn response_round_trips_through_json() {
    let (graph, engine) = figure3();
    let a = graph.vertex_by_label("A").unwrap();
    let response = engine.execute(&Request::community(a).k(2)).unwrap();

    let json = serde_json::to_string(&response).expect("serialisable");
    let restored: Response = serde_json::from_str(&json).expect("deserialisable");
    assert_eq!(restored, response);
    assert_eq!(restored.communities()[0].member_names(&graph), vec!["A", "C", "D"]);
    assert_eq!(restored.meta.algorithm, "Dec");
}

#[test]
fn acq_result_round_trips_through_json() {
    let (graph, engine) = figure3();
    let a = graph.vertex_by_label("A").unwrap();
    let result = engine.execute(&Request::community(a).k(2)).unwrap().result;

    let json = serde_json::to_string(&result).expect("serialisable");
    let restored: AcqResult = serde_json::from_str(&json).expect("deserialisable");
    assert_eq!(restored, result, "communities, label size and stats survive");
}

#[test]
fn a_request_decoded_from_a_wire_string_is_executable() {
    // The shape a serving front-end would receive — written by hand, not by
    // our serializer, to pin the external format.
    let (graph, engine) = figure3();
    let a = graph.vertex_by_label("A").unwrap();
    let json = format!(
        "{{\"vertex\": {}, \"k\": 2, \"spec\": {{\"Community\": {{\"keywords\": null}}}}, \
         \"algorithm\": \"Dec\"}}",
        a.0
    );
    let request: Request = serde_json::from_str(&json).expect("wire shape is stable");
    let response = engine.execute(&request).unwrap();
    assert_eq!(response.communities()[0].member_names(&graph), vec!["A", "C", "D"]);
}
