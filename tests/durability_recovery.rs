//! Fault-injection recovery suite for the crash-safe delta log.
//!
//! The acceptance property (see `docs/DURABILITY.md`): for an arbitrary
//! sequence of logged delta batches and an arbitrary crash or corruption
//! point, reopening the log **never panics**, recovers exactly the longest
//! valid record prefix, and a [`DurableEngine`] rebuilt from the surviving
//! bytes is byte-identical to an engine that applied exactly the
//! acknowledged prefix. Corruption is injected two ways:
//!
//! * directly on the stored bytes — truncation at an arbitrary offset, a
//!   single flipped bit, appended garbage ([`MemStorage::corrupt`]);
//! * through the storage layer — a scripted crash budget tears the write
//!   that crosses it ([`FaultyStorage`]), modelling `kill -9` mid-append.

use attributed_community_search::durable::{
    DeltaLog, DurableEngine, DurableOptions, FaultyStorage, MemStorage, ReadFault, LOG_FILE,
    LOG_MAGIC,
};
use attributed_community_search::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a small attributed graph from raw edge pairs and keyword picks.
fn build_graph(n: usize, edges: &[(u32, u32)], keywords: &[Vec<u32>]) -> AttributedGraph {
    let mut b = GraphBuilder::new();
    for kws in keywords.iter().take(n) {
        let terms: Vec<String> = kws.iter().map(|k| format!("kw{k}")).collect();
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        b.add_unlabeled_vertex(&refs);
    }
    for _ in keywords.len()..n {
        b.add_unlabeled_vertex(&[]);
    }
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
    }
    b.build()
}

/// Decodes raw proptest tuples into delta *batches* that stay valid against
/// a graph that starts with `n0` vertices (vertex inserts grow the id space
/// across batch boundaries, exactly as the engine would see them).
fn decode_batches(n0: usize, raw: &[Vec<(u32, u32, u32, u32)>]) -> Vec<Vec<GraphDelta>> {
    let mut n = n0;
    let mut batches = Vec::new();
    for raw_batch in raw {
        let mut deltas = Vec::new();
        for &(kind, a, b, kw) in raw_batch {
            let (a, b) = ((a as usize % n) as u32, (b as usize % n) as u32);
            let term = format!("kw{kw}");
            match kind {
                0 if a != b => deltas.push(GraphDelta::insert_edge(VertexId(a), VertexId(b))),
                1 if a != b => deltas.push(GraphDelta::remove_edge(VertexId(a), VertexId(b))),
                2 => deltas.push(GraphDelta::AddKeyword { vertex: VertexId(a), term }),
                3 => deltas.push(GraphDelta::RemoveKeyword { vertex: VertexId(a), term }),
                4 => {
                    deltas.push(GraphDelta::InsertVertex { label: None, keywords: vec![term] });
                    n += 1;
                }
                _ => {}
            }
        }
        batches.push(deltas);
    }
    batches
}

/// End offsets of each record in a log holding `batches`: `ends[j]` is the
/// file length after the first `j + 1` records (the 8-byte header included).
fn record_ends(batches: &[Vec<GraphDelta>]) -> Vec<u64> {
    let mut pos = LOG_MAGIC.len() as u64;
    batches
        .iter()
        .enumerate()
        .map(|(i, batch)| {
            let record = attributed_community_search::durable::encode_record(i as u64 + 1, batch)
                .expect("decoded batches encode");
            pos += record.len() as u64;
            pos
        })
        .collect()
}

/// Asserts a [`DurableEngine`] opened over `disk` is byte-identical to a
/// fresh engine that applied exactly `expected` — same graph JSON, same
/// generation, same answer to a probe query.
fn assert_engine_matches_prefix(
    disk: MemStorage,
    base: &Arc<AttributedGraph>,
    expected: &[Vec<GraphDelta>],
) {
    let (durable, report) =
        DurableEngine::open(Box::new(disk), Arc::clone(base), DurableOptions::default())
            .expect("recovery over corrupt bytes must not error");
    assert_eq!(report.records_replayed, expected.len() as u64);
    assert_eq!(report.batches_skipped, 0, "decoded prefix batches all apply");

    let reference = Engine::new(Arc::clone(base));
    for batch in expected {
        reference.apply_updates(batch).expect("acknowledged batches apply");
    }
    let (live, fresh) = (durable.engine(), reference);
    assert_eq!(live.generation(), fresh.generation());
    assert_eq!(
        serde_json::to_string(&*live.graph()).unwrap(),
        serde_json::to_string(&*fresh.graph()).unwrap(),
        "recovered graph diverged from the acknowledged prefix"
    );
    let probe = Request::community(VertexId(0)).k(2);
    let a = live.execute(&probe).expect("probe runs");
    let b = fresh.execute(&probe).expect("probe runs");
    assert_eq!(
        serde_json::to_string(&a.result).unwrap(),
        serde_json::to_string(&b.result).unwrap(),
        "recovered engine answers diverged"
    );
}

/// Opens a log over a clone of `disk` and returns the recovered batches,
/// also asserting that a second open is a no-op (recovery is idempotent:
/// the first open already truncated the garbage).
fn reopen_twice(disk: &MemStorage) -> Vec<Vec<GraphDelta>> {
    let (_, first) = DeltaLog::open(Box::new(disk.clone())).expect("recovery must not error");
    let (_, second) = DeltaLog::open(Box::new(disk.clone())).expect("reopen must not error");
    assert_eq!(second.truncated_bytes, 0, "second open found garbage the first left behind");
    assert_eq!(second.batches, first.batches, "reopen changed the recovered prefix");
    first.batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corruption anywhere in the stored log — truncation, a flipped bit, or
    /// appended garbage at an arbitrary byte — recovers exactly the records
    /// untouched by the defect, and the rebuilt engine matches an engine fed
    /// that prefix.
    #[test]
    fn recovery_survives_arbitrary_log_corruption(
        raw in (
            6usize..12,
            proptest::collection::vec((0u32..16, 0u32..16), 6..30),
            proptest::collection::vec(proptest::collection::vec(0u32..5, 0..3), 12),
            proptest::collection::vec(
                proptest::collection::vec((0u32..5, 0u32..24, 0u32..24, 0u32..5), 1..5),
                1..6,
            ),
            0u32..3,     // corruption mode: truncate / flip a bit / append garbage
            0.0f64..1.0, // corruption position as a fraction of the file
        )
    ) {
        let (n, edges, keywords, raw_batches, mode, frac) = raw;
        let base = Arc::new(build_graph(n, &edges, &keywords));
        let batches = decode_batches(n, &raw_batches);

        // Log every batch over a pristine in-memory disk.
        let disk = MemStorage::new();
        let (mut log, _) = DeltaLog::open(Box::new(disk.clone())).unwrap();
        for batch in &batches {
            log.append(batch).expect("fault-free appends succeed");
        }
        drop(log);
        let ends = record_ends(&batches);
        let file_len = disk.len(LOG_FILE);
        prop_assert_eq!(*ends.last().unwrap(), file_len);

        // Inject the defect and work out which records it leaves intact.
        let c = ((file_len as f64 * frac) as u64).min(file_len.saturating_sub(1));
        let expected_records = match mode {
            0 => {
                disk.corrupt(LOG_FILE, |bytes| bytes.truncate(c as usize));
                ends.iter().take_while(|&&end| end <= c).count()
            }
            1 => {
                disk.corrupt(LOG_FILE, |bytes| bytes[c as usize] ^= 0x10);
                // The record containing byte `c` fails its checksum (or the
                // header fails its magic), killing it and everything after.
                ends.iter().take_while(|&&end| end <= c).count()
            }
            _ => {
                disk.corrupt(LOG_FILE, |bytes| bytes.extend_from_slice(&[0xFF; 13]));
                batches.len()
            }
        };

        let recovered = reopen_twice(&disk);
        prop_assert_eq!(&recovered, &batches[..expected_records],
            "recovered prefix is not the longest valid one (mode {}, byte {})", mode, c);
        assert_engine_matches_prefix(disk, &base, &recovered);
    }

    /// A scripted crash at an arbitrary byte budget — the storage-layer view
    /// of `kill -9` — tears the in-flight append. Every *acknowledged*
    /// append survives the reboot; the torn tail is truncated away.
    #[test]
    fn every_acknowledged_append_survives_a_torn_write_crash(
        raw in (
            6usize..12,
            proptest::collection::vec((0u32..16, 0u32..16), 6..30),
            proptest::collection::vec(proptest::collection::vec(0u32..5, 0..3), 12),
            proptest::collection::vec(
                proptest::collection::vec((0u32..5, 0u32..24, 0u32..24, 0u32..5), 1..5),
                1..6,
            ),
            0.0f64..1.05, // crash budget as a fraction of the total bytes written
        )
    ) {
        let (n, edges, keywords, raw_batches, frac) = raw;
        let base = Arc::new(build_graph(n, &edges, &keywords));
        let batches = decode_batches(n, &raw_batches);
        let ends = record_ends(&batches);
        let total = *ends.last().unwrap();

        // Crash once `budget` bytes are on the platters. The 8-byte log
        // header written by `open` counts toward the budget too.
        let budget = ((total as f64 * frac) as u64).min(total);
        let faulty = FaultyStorage::new();
        faulty.crash_after_bytes(budget);

        let mut acked = 0usize;
        match DeltaLog::open(Box::new(faulty.clone())) {
            Err(_) => {
                // The header write itself tore; nothing was ever logged.
                prop_assert!(budget < LOG_MAGIC.len() as u64);
            }
            Ok((mut log, _)) => {
                for batch in &batches {
                    match log.append(batch) {
                        Ok(_) => acked += 1,
                        Err(_) => break,
                    }
                }
            }
        }
        let expected = ends.iter().take_while(|&&end| end <= budget).count();
        prop_assert_eq!(acked, expected, "ack count vs durable prefix (budget {})", budget);
        prop_assert!(acked == batches.len() || faulty.crashed());

        // Reboot: reopen over the surviving bytes only.
        let recovered = reopen_twice(&faulty.disk());
        prop_assert_eq!(&recovered, &batches[..acked],
            "an acknowledged batch was lost, or an unacknowledged one survived");
        assert_engine_matches_prefix(faulty.disk(), &base, &recovered);
    }
}

#[test]
fn compaction_snapshot_recovers_without_replaying_folded_records() {
    let base = Arc::new(paper_figure3_graph());
    let disk = MemStorage::new();
    let options = DurableOptions { compact_every: 2, ..DurableOptions::default() };
    let (durable, _) =
        DurableEngine::open(Box::new(disk.clone()), Arc::clone(&base), options).unwrap();
    for i in 0..5u32 {
        durable.log_and_apply(&[GraphDelta::insert_vertex(None, &[&format!("snap{i}")])]).unwrap();
    }
    let stats = durable.stats();
    assert!(stats.compactions >= 2, "compact_every=2 over 5 batches: {stats:?}");
    assert!(stats.snapshot_bytes > 0);
    assert_eq!(stats.compaction_failures, 0);
    assert!(stats.last_compaction_micros > 0);
    let expected_graph = serde_json::to_string(&*durable.engine().graph()).unwrap();
    drop(durable);

    let (reopened, report) =
        DurableEngine::open(Box::new(disk), base, DurableOptions::default()).unwrap();
    assert!(report.snapshot_loaded, "compaction must have installed a snapshot");
    assert!(
        report.records_replayed < 5,
        "snapshot-covered records replayed: {}",
        report.records_replayed
    );
    assert_eq!(serde_json::to_string(&*reopened.engine().graph()).unwrap(), expected_graph);
}

#[test]
fn a_rejected_batch_is_rolled_out_of_the_log() {
    let base = Arc::new(paper_figure3_graph());
    let disk = MemStorage::new();
    let (durable, _) =
        DurableEngine::open(Box::new(disk.clone()), Arc::clone(&base), DurableOptions::default())
            .unwrap();
    durable.log_and_apply(&[GraphDelta::insert_edge(VertexId(0), VertexId(5))]).unwrap();
    // Vertex 999 does not exist: the engine refuses the batch, so the log
    // entry written ahead of it must be rolled back, not replayed later.
    let err =
        durable.log_and_apply(&[GraphDelta::insert_edge(VertexId(0), VertexId(999))]).unwrap_err();
    assert!(err.to_string().contains("999"), "unexpected error: {err}");
    assert_eq!(durable.engine().generation(), 2, "rejected batch must not apply");
    durable.log_and_apply(&[GraphDelta::remove_edge(VertexId(0), VertexId(5))]).unwrap();
    drop(durable);

    let (_, recovered) = DeltaLog::open(Box::new(disk)).unwrap();
    assert_eq!(
        recovered.batches,
        vec![
            vec![GraphDelta::insert_edge(VertexId(0), VertexId(5))],
            vec![GraphDelta::remove_edge(VertexId(0), VertexId(5))],
        ],
        "the rejected batch leaked into the replay set"
    );
}

#[test]
fn an_unpersisted_batch_is_neither_acknowledged_nor_applied() {
    let base = Arc::new(paper_figure3_graph());
    let faulty = FaultyStorage::new();
    let (durable, _) =
        DurableEngine::open(Box::new(faulty.clone()), Arc::clone(&base), DurableOptions::default())
            .unwrap();
    // Allow no bytes beyond the 8 already written for the header: the next
    // append tears immediately.
    faulty.crash_after_bytes(8);
    let err =
        durable.log_and_apply(&[GraphDelta::insert_edge(VertexId(0), VertexId(5))]).unwrap_err();
    assert!(err.to_string().contains("durability failure"), "unexpected error: {err}");
    assert_eq!(durable.engine().generation(), 1, "unlogged batch must not apply");
    assert!(!durable.engine().graph().has_edge(VertexId(0), VertexId(5)));
}

#[test]
fn a_failed_sync_refuses_the_ack_and_the_log_keeps_working_after_repair() {
    let faulty = FaultyStorage::new();
    let (mut log, _) = DeltaLog::open(Box::new(faulty.clone())).unwrap();
    faulty.fail_syncs(true);
    // The bytes hit the disk but the fsync failed: no ack, and the repair
    // truncation restores the old length so the log is still usable.
    log.append(&[GraphDelta::insert_edge(VertexId(0), VertexId(1))]).unwrap_err();
    assert_eq!(faulty.disk().len(LOG_FILE), 8, "unsynced record repaired away");
    faulty.fail_syncs(false);
    let seq = log.append(&[GraphDelta::insert_edge(VertexId(0), VertexId(2))]).unwrap();
    assert_eq!(seq, 1, "the failed append must not burn a sequence number");
    let (_, recovered) = DeltaLog::open(Box::new(faulty.disk())).unwrap();
    assert_eq!(recovered.batches, vec![vec![GraphDelta::insert_edge(VertexId(0), VertexId(2))]]);
}

#[test]
fn unreadable_storage_surfaces_an_error_instead_of_panicking() {
    let faulty = FaultyStorage::new();
    {
        let (mut log, _) = DeltaLog::open(Box::new(faulty.clone())).unwrap();
        log.append(&[GraphDelta::insert_edge(VertexId(0), VertexId(1))]).unwrap();
    }
    faulty.set_read_fault(LOG_FILE, ReadFault::Error);
    let base = Arc::new(paper_figure3_graph());
    let result = DurableEngine::open(Box::new(faulty.clone()), base, DurableOptions::default());
    assert!(result.is_err(), "an unreadable log is an infrastructure failure, not corruption");
    faulty.heal();
}

#[test]
fn a_short_read_recovers_like_a_torn_tail() {
    let faulty = FaultyStorage::new();
    let first = vec![GraphDelta::insert_edge(VertexId(0), VertexId(1))];
    let second = vec![GraphDelta::insert_edge(VertexId(2), VertexId(3))];
    let cut = {
        let (mut log, _) = DeltaLog::open(Box::new(faulty.clone())).unwrap();
        log.append(&first).unwrap();
        let cut = log.log_len() + 5; // mid-way through the second record
        log.append(&second).unwrap();
        cut
    };
    // Reads see only a prefix — the lost-tail view a dying disk gives.
    faulty.set_read_fault(LOG_FILE, ReadFault::Short(cut as usize));
    let (log, recovered) = DeltaLog::open(Box::new(faulty.clone())).unwrap();
    assert_eq!(recovered.batches, vec![first], "the half-visible record must be dropped");
    assert!(recovered.truncated_bytes > 0);
    drop(log);
    faulty.heal();
    // Recovery truncated the real file down to what it could verify, so a
    // healed reopen agrees with the degraded one.
    assert_eq!(faulty.disk().len(LOG_FILE), cut - 5);
}

/// The dedup window is bounded: at capacity the oldest token is evicted, and
/// a retry of an evicted token is no longer recognised — it re-applies. That
/// is the documented trade-off (`docs/DURABILITY.md`): the window turns
/// "retry may double-apply" into "retry within the window never does".
#[test]
fn dedup_window_evicts_at_capacity_and_an_evicted_token_reapplies() {
    use attributed_community_search::durable::{DedupWindow, WriteToken};
    let disk = MemStorage::new();
    let base = Arc::new(paper_figure3_graph());
    let (durable, _) =
        DurableEngine::open(Box::new(disk), Arc::clone(&base), DurableOptions::default()).unwrap();

    let mut window = DedupWindow::new(2);
    for seq in 1..=3u64 {
        let token = WriteToken::new(1, seq);
        let batch = vec![GraphDelta::InsertVertex { label: None, keywords: vec![] }];
        let report = durable.log_and_apply_tokened(Some(&token), &batch).unwrap();
        window.record(token, report);
    }
    assert_eq!(window.len(), 2, "the window is bounded at its capacity");
    assert!(window.get(&WriteToken::new(1, 1)).is_none(), "oldest token evicted");
    assert!(window.get(&WriteToken::new(1, 2)).is_some());
    assert!(window.get(&WriteToken::new(1, 3)).is_some());

    // A retry of the evicted token is not recognised: it applies again, as a
    // fresh write would. generation 4 (base 1 + three batches) becomes 5.
    let generation_before = durable.engine().generation();
    let token = WriteToken::new(1, 1);
    let batch = vec![GraphDelta::InsertVertex { label: None, keywords: vec![] }];
    let report = durable.log_and_apply_tokened(Some(&token), &batch).unwrap();
    assert_eq!(report.generation, generation_before + 1, "an evicted token re-applies");
}

/// Tokens ride inside logged records, so the dedup guarantee survives a
/// crash: a `DurableEngine::open_dir` recovery returns every tokened
/// record's (token, report) pair, in order, and a window reseeded from them
/// replays a pre-crash retry instead of re-applying it.
#[test]
fn dedup_tokens_survive_crash_recovery_through_open_dir() {
    use attributed_community_search::durable::{DedupWindow, WriteToken};
    let dir = std::env::temp_dir().join(format!("acq-dedup-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = Arc::new(paper_figure3_graph());

    // First life: two tokened writes and one tokenless one, then "crash".
    let tokens = [WriteToken::new(9, 1), WriteToken::new(9, 2)];
    let first_reports = {
        let (durable, _) =
            DurableEngine::open_dir(&dir, Arc::clone(&base), DurableOptions::default()).unwrap();
        let reports: Vec<_> = tokens
            .iter()
            .map(|token| {
                let batch = vec![GraphDelta::InsertVertex { label: None, keywords: vec![] }];
                durable.log_and_apply_tokened(Some(token), &batch).unwrap()
            })
            .collect();
        durable.log_and_apply(&[GraphDelta::insert_edge(VertexId(7), VertexId(5))]).unwrap();
        reports
        // drop = crash: nothing about the window itself was persisted.
    };

    // Second life: recovery hands back exactly the tokened pairs, in order.
    let (durable, report) =
        DurableEngine::open_dir(&dir, Arc::clone(&base), DurableOptions::default()).unwrap();
    assert_eq!(report.records_replayed, 3);
    let recovered = durable.recovered_tokens();
    assert_eq!(recovered.len(), 2, "only tokened records carry tokens");
    assert_eq!(recovered[0].0, tokens[0]);
    assert_eq!(recovered[1].0, tokens[1]);
    assert_eq!(recovered[0].1, first_reports[0], "replayed report matches the acknowledged one");
    assert_eq!(recovered[1].1, first_reports[1]);

    // A window reseeded from recovery replays the pre-crash retry.
    let mut window = DedupWindow::new(16);
    for (token, report) in recovered {
        window.record(*token, report.clone());
    }
    assert_eq!(window.get(&tokens[0]), Some(&first_reports[0]));
    assert_eq!(window.get(&WriteToken::new(9, 3)), None, "an unseen token still applies normally");
    let _ = std::fs::remove_dir_all(&dir);
}
