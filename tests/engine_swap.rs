//! Concurrency tests for [`Engine::swap_index`]: publishing a new index
//! generation must not disturb concurrent `execute` calls — queries keep
//! succeeding throughout, answers never change (same graph), and each thread
//! observes generations in publication order.

use attributed_community_search::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn swap_under_load_never_disturbs_concurrent_queries() {
    let graph = Arc::new(attributed_community_search::datagen::generate(
        &attributed_community_search::datagen::tiny(),
    ));
    let engine = Engine::new(Arc::clone(&graph));
    let queries: Vec<Request> = graph
        .vertices()
        .filter(|&v| CoreDecomposition::compute(&graph).core_number(v) >= 3)
        .take(6)
        .map(|v| Request::community(v).k(3))
        .collect();
    assert!(!queries.is_empty(), "the tiny profile has a 3-core");

    // Reference answers before any swap.
    let reference: Vec<AcqResult> = queries
        .iter()
        .map(|request| engine.execute(request).expect("valid request").result)
        .collect();

    const SWAPS: u64 = 25;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: keeps publishing freshly built indexes while readers query.
        let writer = scope.spawn(|| {
            for _ in 0..SWAPS {
                engine.rebuild_index();
            }
            stop.store(true, Ordering::Release);
        });

        // Readers: hammer the engine across the swaps.
        let mut readers = Vec::new();
        for _ in 0..4 {
            readers.push(scope.spawn(|| {
                let mut last_generation = 0u64;
                let mut rounds = 0usize;
                while !stop.load(Ordering::Acquire) || rounds < 3 {
                    for (request, expected) in queries.iter().zip(&reference) {
                        let response =
                            engine.execute(request).expect("swap must not break queries");
                        assert_eq!(
                            &response.result, expected,
                            "same graph must yield the same answer across generations"
                        );
                        // Generations are observed in publication order.
                        assert!(
                            response.meta.generation >= last_generation,
                            "generation went backwards: {} after {}",
                            response.meta.generation,
                            last_generation
                        );
                        last_generation = response.meta.generation;
                    }
                    rounds += 1;
                }
                last_generation
            }));
        }

        writer.join().expect("writer thread");
        let max_seen = readers.into_iter().map(|r| r.join().expect("reader thread")).max().unwrap();
        assert!(max_seen > 1, "readers must have observed at least one published swap");
    });

    assert_eq!(engine.generation(), 1 + SWAPS, "every swap bumped the generation");
    // After the dust settles, the engine still answers from the last index.
    let final_response = engine.execute(&queries[0]).unwrap();
    assert_eq!(final_response.meta.generation, 1 + SWAPS);
    assert_eq!(final_response.result, reference[0]);
}

#[test]
fn a_batch_runs_entirely_on_one_generation() {
    let graph = Arc::new(paper_figure3_graph());
    let engine = Engine::builder(Arc::clone(&graph)).threads(4).build();
    let requests: Vec<Request> = graph.vertices().map(|v| Request::community(v).k(2)).collect();

    std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            for _ in 0..10 {
                engine.rebuild_index();
            }
        });
        for _ in 0..10 {
            let responses = engine.execute_batch(&requests);
            let generations: Vec<u64> =
                responses.iter().map(|r| r.as_ref().unwrap().meta.generation).collect();
            assert!(
                generations.windows(2).all(|w| w[0] == w[1]),
                "a batch must never straddle an index swap: {generations:?}"
            );
        }
        swapper.join().expect("swapper thread");
    });
}

#[test]
fn apply_updates_under_load_keeps_queries_consistent() {
    // The live-update shape: a writer feeds delta batches through
    // `Engine::apply_updates` while readers hammer queries. Every query must
    // succeed on *some* coherent generation (graph+index+cache snapshot),
    // generations must be observed in publication order, and when the dust
    // settles the engine answers exactly like a from-scratch engine over the
    // final graph.
    let graph = Arc::new(attributed_community_search::datagen::generate(
        &attributed_community_search::datagen::tiny(),
    ));
    let engine = Engine::new(Arc::clone(&graph));
    let queries: Vec<Request> = graph
        .vertices()
        .filter(|&v| CoreDecomposition::compute(&graph).core_number(v) >= 3)
        .take(6)
        .map(|v| Request::community(v).k(3))
        .collect();
    assert!(!queries.is_empty());

    // A toggle schedule: each batch flips a few edges (insert if absent,
    // remove if present is expressed as two one-delta batches around it) and
    // churns a keyword.
    let pairs: Vec<(VertexId, VertexId)> = {
        let vs: Vec<VertexId> = graph.vertices().collect();
        (0..10)
            .map(|i| (vs[i % vs.len()], vs[(i * 7 + 3) % vs.len()]))
            .filter(|(a, b)| a != b)
            .collect()
    };
    const ROUNDS: usize = 8;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut batches = 0u64;
            for round in 0..ROUNDS {
                let current = engine.graph();
                let deltas: Vec<GraphDelta> = pairs
                    .iter()
                    .map(|&(u, v)| {
                        if current.has_edge(u, v) {
                            GraphDelta::remove_edge(u, v)
                        } else {
                            GraphDelta::insert_edge(u, v)
                        }
                    })
                    .chain(std::iter::once(GraphDelta::add_keyword(
                        pairs[round % pairs.len()].0,
                        "churn",
                    )))
                    .collect();
                engine.apply_updates(&deltas).expect("valid deltas");
                batches += 1;
            }
            stop.store(true, Ordering::Release);
            batches
        });

        let mut readers = Vec::new();
        for _ in 0..4 {
            readers.push(scope.spawn(|| {
                let mut last_generation = 0u64;
                let mut rounds = 0usize;
                while !stop.load(Ordering::Acquire) || rounds < 3 {
                    for request in &queries {
                        let response =
                            engine.execute(request).expect("updates must not break queries");
                        assert!(
                            response.meta.generation >= last_generation,
                            "generation went backwards: {} after {}",
                            response.meta.generation,
                            last_generation
                        );
                        last_generation = response.meta.generation;
                    }
                    rounds += 1;
                }
            }));
        }

        let batches = writer.join().expect("writer thread");
        for reader in readers {
            reader.join().expect("reader thread");
        }
        assert_eq!(engine.generation(), 1 + batches, "every update batch published once");
    });

    // Post-conditions: the published graph reflects the final toggle state,
    // and the maintained engine agrees with a from-scratch rebuild on it.
    let final_graph = engine.graph();
    let fresh = Engine::new(Arc::clone(&final_graph));
    for request in &queries {
        let live = engine.execute(request).unwrap();
        let rebuilt = fresh.execute(request).unwrap();
        assert_eq!(live.result, rebuilt.result, "maintained state must equal a rebuild");
    }
}

#[test]
fn swapped_in_maintained_index_serves_the_updated_graph() {
    // The dynamic-maintenance shape this handle exists for: the graph gains
    // an edge, the index is maintained off to the side, and the swap
    // publishes the maintained tree to a *new* generation of an engine that
    // owns the updated graph — no rebuild on the serving path.
    use attributed_community_search::cltree::maintenance;

    let graph = paper_figure3_graph();
    let stale_index = build_advanced(&graph, true);

    let h = graph.vertex_by_label("H").unwrap();
    let j = graph.vertex_by_label("J").unwrap();
    assert!(!graph.has_edge(h, j));
    let updated = Arc::new(graph.with_edge_inserted(h, j).unwrap());
    let maintained = maintenance::apply_edge_insertion(&stale_index, &updated, h, j);

    // The serving engine owns the updated graph; the maintained index is
    // published through the swap and must answer queries from generation 2.
    let engine = Engine::builder(Arc::clone(&updated)).index(Arc::new(stale_index)).build();
    let generation = engine.swap_index(Arc::new(maintained));
    assert_eq!(generation, 2);

    // H gained an edge: its community structure must match a from-scratch
    // engine over the updated graph, served *through the swapped index*.
    for request in [Request::community(h).k(3), Request::community(j).k(2)] {
        let via_swap = engine.execute(&request).unwrap();
        assert_eq!(via_swap.meta.generation, 2, "query must run on the swapped generation");
        let from_scratch = Engine::new(Arc::clone(&updated)).execute(&request).unwrap();
        assert_eq!(via_swap.result.canonical(), from_scratch.result.canonical());
    }
}
