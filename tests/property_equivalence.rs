//! Property-based integration tests on *generated* datasets (as opposed to
//! the purely random graphs used by the per-crate property tests), built
//! around the unified `Request`/`Executor` surface:
//!
//! * **executor equivalence** — any request (all three spec kinds, every
//!   algorithm) produces canonical-identical communities from the sequential
//!   owning `Engine` and from a `BatchEngine`, across thread counts;
//! * the monotonicity properties of the problem variants.

use attributed_community_search::datagen;
use attributed_community_search::prelude::*;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// One generated graph is shared by all cases (generation dominates runtime);
/// proptest varies the query vertex, k, the spec kind and the keyword subset.
fn shared_graph() -> &'static Arc<AttributedGraph> {
    static GRAPH: OnceLock<Arc<AttributedGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Arc::new(datagen::generate(&datagen::tiny())))
}

/// The sequential reference executor: one thread, caching disabled.
fn reference_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::builder(Arc::clone(shared_graph())).cache_capacity(0).threads(1).build()
    })
}

/// Batch executors sharing the reference index, at several worker counts.
fn batch_engines() -> &'static Vec<BatchEngine> {
    static ENGINES: OnceLock<Vec<BatchEngine>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let index = reference_engine().index();
        [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                BatchEngine::with_index(Arc::clone(shared_graph()), Arc::clone(&index))
                    .with_threads(threads)
                    .with_cache_capacity(64)
            })
            .collect()
    })
}

/// An arbitrary request against the shared graph: any vertex, any small `k`,
/// any of the three spec kinds, any algorithm, keywords drawn from `W(q)`.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..1000,                    // vertex pick
        1usize..6,                       // k
        0usize..AcqAlgorithm::ALL.len(), // algorithm pick
        0usize..3,                       // spec kind
        0u64..1000,                      // keyword subset seed
        0.0f64..1.0,                     // theta
    )
        .prop_map(|(vertex_pick, k, alg, kind, kw_seed, theta)| {
            let graph = shared_graph();
            let q = VertexId::from_index(vertex_pick % graph.num_vertices());
            let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(kw_seed);
            let take = if wq.is_empty() { 0 } else { kw_seed as usize % (wq.len() + 1) };
            let s: Vec<KeywordId> = wq.choose_multiple(&mut rng, take).copied().collect();
            let request = Request::community(q).k(k).algorithm(AcqAlgorithm::ALL[alg]);
            match kind {
                0 if s.is_empty() => request,
                0 => request.keywords(s),
                1 => request.exact_keywords(s),
                _ => request.keywords(s).threshold(theta),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executor equivalence: for any batch of requests, every `BatchEngine`
    /// (1, 2 and 4 workers, shared LRU cache) returns canonical-identical
    /// communities to the sequential cache-less `Engine` — all three spec
    /// kinds and all seven algorithms flow through this single property.
    #[test]
    fn executors_agree_for_any_request(requests in proptest::collection::vec(arb_request(), 1..10)) {
        let sequential = reference_engine();
        let expected: Vec<_> = requests
            .iter()
            .map(|request| sequential.execute(request).map(|r| r.result))
            .collect();
        for engine in batch_engines() {
            let batched = engine.execute_batch(&requests);
            prop_assert_eq!(batched.len(), expected.len());
            for ((request, got), want) in requests.iter().zip(&batched).zip(&expected) {
                let got = got.clone().map(|r| r.result);
                prop_assert_eq!(
                    &got, want,
                    "request {:?} must agree across executors", request
                );
            }
        }
    }

    /// The sequential engine agrees with itself across algorithm picks for
    /// the `Community` spec (canonical form), pinning that the algorithm knob
    /// changes the work, never the answer.
    #[test]
    fn algorithms_agree_on_generated_graph(
        vertex_pick in 0usize..1000,
        k in 1usize..6,
        keyword_subset_seed in 0u64..1000,
    ) {
        let graph = shared_graph();
        let engine = reference_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(keyword_subset_seed);
        let take = if wq.is_empty() { 0 } else { keyword_subset_seed as usize % (wq.len() + 1) };
        let s: Vec<KeywordId> = wq.choose_multiple(&mut rng, take).copied().collect();
        let base = if s.is_empty() {
            Request::community(q).k(k)
        } else {
            Request::community(q).k(k).keywords(s)
        };
        let reference = engine
            .execute(&base.clone().algorithm(AcqAlgorithm::BasicG))
            .unwrap()
            .canonical();
        for algorithm in AcqAlgorithm::ALL {
            let response = engine.execute(&base.clone().algorithm(algorithm)).unwrap();
            prop_assert_eq!(response.canonical(), reference.clone(), "{}", algorithm.name());
        }
    }

    /// Variant 2 monotonicity: raising θ never enlarges the community, and
    /// θ = 1.0 coincides with Variant 1 on the same keyword set.
    #[test]
    fn variant2_is_monotone_in_theta(
        vertex_pick in 0usize..1000,
        k in 1usize..5,
    ) {
        let graph = shared_graph();
        let engine = reference_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        let keywords: Vec<KeywordId> = graph.keyword_set(q).iter().take(4).collect();
        if keywords.is_empty() {
            return Ok(());
        }
        let mut previous_size: Option<usize> = None;
        for theta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let request =
                Request::community(q).k(k).keywords(keywords.iter().copied()).threshold(theta);
            let result = engine.execute(&request).unwrap().result;
            let size = result.communities.first().map(AttributedCommunity::len);
            if let (Some(prev), Some(now)) = (previous_size, size) {
                prop_assert!(now <= prev, "θ increased but the community grew: {prev} -> {now}");
            }
            if size.is_some() {
                previous_size = size;
            } else {
                // Once the community disappears it must stay gone for larger θ.
                previous_size = Some(0);
            }
        }
        // θ = 1.0 equals Variant 1.
        let v2 = engine
            .execute(&Request::community(q).k(k).keywords(keywords.iter().copied()).threshold(1.0))
            .unwrap();
        let v1 = engine
            .execute(&Request::community(q).k(k).exact_keywords(keywords))
            .unwrap();
        prop_assert_eq!(
            v2.communities().first().map(|c| c.vertices.clone()),
            v1.communities().first().map(|c| c.vertices.clone())
        );
    }

    /// The k-monotonicity of the AC: for the same query, increasing k can only
    /// shrink (or eliminate) each returned community's vertex pool, because a
    /// (k+1)-core is contained in a k-core. We check the weaker, well-defined
    /// consequence: the size of the largest returned community is
    /// non-increasing in k whenever the AC-label stays the same.
    #[test]
    fn community_size_shrinks_with_k_for_fixed_label(vertex_pick in 0usize..1000) {
        let graph = shared_graph();
        let engine = reference_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        let mut previous: Option<(usize, Vec<KeywordId>)> = None;
        for k in 1..=5usize {
            let result = engine.execute(&Request::community(q).k(k)).unwrap().result;
            let Some(largest) = result.communities.iter().map(AttributedCommunity::len).max()
            else {
                break;
            };
            let label = result.communities[0].label.clone();
            if let Some((prev_size, prev_label)) = &previous {
                if *prev_label == label {
                    prop_assert!(largest <= *prev_size,
                        "k went up but the community grew: {prev_size} -> {largest}");
                }
            }
            previous = Some((largest, label));
        }
    }
}
