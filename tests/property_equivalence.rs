//! Property-based integration tests on *generated* datasets (as opposed to the
//! purely random graphs used by the per-crate property tests): algorithm
//! equivalence, label maximality, and the monotonicity properties of the
//! problem variants.

use attributed_community_search::datagen;
use attributed_community_search::prelude::*;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One generated graph is shared by all cases (generation dominates runtime);
/// proptest varies the query vertex, k and the keyword subset.
fn shared_graph() -> &'static AttributedGraph {
    use std::sync::OnceLock;
    static GRAPH: OnceLock<AttributedGraph> = OnceLock::new();
    GRAPH.get_or_init(|| datagen::generate(&datagen::tiny()))
}

fn shared_engine() -> &'static AcqEngine<'static> {
    use std::sync::OnceLock;
    static ENGINE: OnceLock<AcqEngine<'static>> = OnceLock::new();
    ENGINE.get_or_init(|| AcqEngine::new(shared_graph()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All seven algorithm variants return identical community sets for
    /// arbitrary queries against the generated dataset.
    #[test]
    fn algorithms_agree_on_generated_graph(
        vertex_pick in 0usize..1000,
        k in 1usize..6,
        keyword_subset_seed in 0u64..1000,
    ) {
        let graph = shared_graph();
        let engine = shared_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        // Random subset of W(q) as S (possibly empty -> behaves like label-less).
        let wq: Vec<KeywordId> = graph.keyword_set(q).iter().collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(keyword_subset_seed);
        let take = if wq.is_empty() { 0 } else { keyword_subset_seed as usize % (wq.len() + 1) };
        let s: Vec<KeywordId> = wq.choose_multiple(&mut rng, take).copied().collect();
        let query = if s.is_empty() {
            AcqQuery::new(q, k)
        } else {
            AcqQuery::with_keywords(q, k, s)
        };
        let reference = engine.query_with(&query, AcqAlgorithm::BasicG).unwrap().canonical();
        for algorithm in AcqAlgorithm::ALL {
            let result = engine.query_with(&query, algorithm).unwrap();
            prop_assert_eq!(result.canonical(), reference.clone(), "{}", algorithm.name());
        }
    }

    /// Variant 2 monotonicity: raising θ never enlarges the community, and
    /// θ = 1.0 coincides with Variant 1 on the same keyword set.
    #[test]
    fn variant2_is_monotone_in_theta(
        vertex_pick in 0usize..1000,
        k in 1usize..5,
    ) {
        let graph = shared_graph();
        let engine = shared_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        let keywords: Vec<KeywordId> = graph.keyword_set(q).iter().take(4).collect();
        if keywords.is_empty() {
            return Ok(());
        }
        let mut previous_size: Option<usize> = None;
        for theta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let result = engine
                .query_variant2(&Variant2Query { vertex: q, k, keywords: keywords.clone(), theta })
                .unwrap();
            let size = result.communities.first().map(AttributedCommunity::len);
            if let (Some(prev), Some(now)) = (previous_size, size) {
                prop_assert!(now <= prev, "θ increased but the community grew: {prev} -> {now}");
            }
            if size.is_some() {
                previous_size = size;
            } else {
                // Once the community disappears it must stay gone for larger θ.
                previous_size = Some(0);
            }
        }
        // θ = 1.0 equals Variant 1.
        let v2 = engine
            .query_variant2(&Variant2Query { vertex: q, k, keywords: keywords.clone(), theta: 1.0 })
            .unwrap();
        let v1 = engine
            .query_variant1(&Variant1Query { vertex: q, k, keywords })
            .unwrap();
        prop_assert_eq!(
            v2.communities.first().map(|c| c.vertices.clone()),
            v1.communities.first().map(|c| c.vertices.clone())
        );
    }

    /// The k-monotonicity of the AC: for the same query, increasing k can only
    /// shrink (or eliminate) each returned community's vertex pool, because a
    /// (k+1)-core is contained in a k-core. We check the weaker, well-defined
    /// consequence: the size of the largest returned community is
    /// non-increasing in k whenever the AC-label stays the same.
    #[test]
    fn community_size_shrinks_with_k_for_fixed_label(vertex_pick in 0usize..1000) {
        let graph = shared_graph();
        let engine = shared_engine();
        let q = VertexId::from_index(vertex_pick % graph.num_vertices());
        let mut previous: Option<(usize, Vec<KeywordId>)> = None;
        for k in 1..=5usize {
            let result = engine.query(&AcqQuery::new(q, k)).unwrap();
            let Some(largest) = result.communities.iter().map(AttributedCommunity::len).max()
            else {
                break;
            };
            let label = result.communities[0].label.clone();
            if let Some((prev_size, prev_label)) = &previous {
                if *prev_label == label {
                    prop_assert!(largest <= *prev_size,
                        "k went up but the community grew: {prev_size} -> {largest}");
                }
            }
            previous = Some((largest, label));
        }
    }
}
