//! Offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) with a
//! simple wall-clock measurement loop instead of upstream's statistical
//! analysis: each benchmark runs a warm-up call plus `sample_size` timed
//! iterations and prints the mean time per iteration.
//!
//! Benches using this crate must set `harness = false` in their manifest, as
//! `criterion_main!` generates the `main` function.
//!
//! When the `BENCH_JSONL` environment variable names a file, every finished
//! benchmark additionally appends one JSON line
//! (`{"benchmark": ..., "mean_ns": ..., "iterations": ...}`) to it, so
//! baseline files like the repository's `BENCH_batch_query.json` can be
//! recorded without parsing the human-readable output.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter display.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once (recording its wall-clock time).
    ///
    /// The surrounding harness calls the benchmark body — and therefore this
    /// method — `sample_size` times and reports the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<N: fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 10 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, body: F) -> &mut Self
    where
        N: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), 10, body);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N, F>(&mut self, id: N, body: F) -> &mut Self
    where
        N: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, body);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| body(b, input));
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut body: F) {
    // Warm-up pass, not counted.
    let mut warmup = Bencher::default();
    body(&mut warmup);

    let mut bencher = Bencher::default();
    for _ in 0..samples {
        body(&mut bencher);
    }
    let mean = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
    };
    println!("bench: {label:<60} {mean:>12.3?}/iter ({} iters)", bencher.iterations);
    if let Ok(path) = std::env::var("BENCH_JSONL") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let escaped: String =
                label.chars().filter(|c| *c != '"' && *c != '\\' && !c.is_control()).collect();
            let _ = writeln!(
                file,
                "{{\"benchmark\": \"{escaped}\", \"mean_ns\": {}, \"iterations\": {}}}",
                mean.as_nanos(),
                bencher.iterations
            );
        }
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
