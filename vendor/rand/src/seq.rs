//! Sequence-related sampling: the [`SliceRandom`] extension trait.

use crate::Rng;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements chosen without replacement (fewer if
    /// the slice is shorter), in random order.
    fn choose_multiple<R: Rng>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index permutation.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.into_iter().take(amount).map(|i| &self[i]).collect::<Vec<_>>().into_iter()
    }
}
