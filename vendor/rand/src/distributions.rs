//! Sampling distributions: the [`Distribution`] trait and [`WeightedIndex`].

use crate::{unit_f64, RngCore};
use std::borrow::Borrow;
use std::fmt;

/// A distribution that produces values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight collection was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "a weight is invalid"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` with probability proportional to the given weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    /// Cumulative weight sums; `cumulative.last()` is the total.
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the distribution from an iterator of non-negative `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = unit_f64(rng) * total;
        // First index whose cumulative weight exceeds the target.
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&target).expect("finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}
