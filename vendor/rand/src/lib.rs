//! Offline stand-in for the `rand` crate, implementing the subset of the
//! 0.8 API that this workspace uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`]
//! traits, uniform range sampling, [`seq::SliceRandom`] and
//! [`distributions::WeightedIndex`].

pub mod distributions;
pub mod seq;

/// The items wildcard-imported by `use rand::prelude::*` upstream.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform `f64` in `[0, 1)` built from the top 53 bits of a random word.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that supports uniform sampling of a single value.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);
