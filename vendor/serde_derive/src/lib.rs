//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the shapes this workspace actually uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]` on fields (skipped
//!   on serialize, filled from `Default::default()` on deserialize);
//! * `#[serde(transparent)]` newtype structs (one unnamed field), which also
//!   get a `JsonKey` impl so they can be used as map keys;
//! * enums whose variants are unit variants (serialized as the variant name
//!   string), have named fields (serialized externally tagged, as
//!   `{"Variant": {fields...}}`), or have unnamed fields (externally tagged as
//!   `{"Variant": value}` for a single field and `{"Variant": [a, b, ...]}`
//!   otherwise, matching real serde's newtype/tuple variant encoding);
//! * generic parameters and other serde attributes are **not** supported and
//!   produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    /// Named fields as `(name, skipped)` pairs, in declaration order.
    Named(Vec<(String, bool)>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum variants, in declaration order.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    /// `Variant` — serialized as the bare variant name string.
    Unit,
    /// `Variant { a: A, b: B }` — field `(name, skipped)` pairs.
    Named(Vec<(String, bool)>),
    /// `Variant(A, B)` — this many unnamed fields.
    Tuple(usize),
}

/// Splits leading attributes off a token cursor, returning whether any of
/// them is `#[serde(<word>)]` for each word in `words`.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize, words: &[&str]) -> Vec<bool> {
    let mut found = vec![false; words.len()];
    while *pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*pos] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(head)) = inner.first() {
            if head.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for tt in args.stream() {
                        if let TokenTree::Ident(word) = &tt {
                            let word = word.to_string();
                            match words.iter().position(|w| *w == word) {
                                Some(i) => found[i] = true,
                                None => {
                                    panic!("serde stand-in: unsupported attribute #[serde({word})]")
                                }
                            }
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    found
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let transparent = take_attrs(&tokens, &mut pos, &["transparent"])[0];

    // Skip visibility (`pub`, optionally `pub(...)`).
    if matches!(&tokens[pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            pos += 1;
        }
    }

    let is_enum = match &tokens[pos] {
        TokenTree::Ident(i) if i.to_string() == "struct" => {
            pos += 1;
            false
        }
        TokenTree::Ident(i) if i.to_string() == "enum" => {
            pos += 1;
            true
        }
        other => panic!("serde stand-in: only structs and enums can be derived, found `{other}`"),
    };

    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde stand-in: expected type name, found `{other}`"),
    };
    pos += 1;

    if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde stand-in: generic types are not supported ({name})");
    }

    let kind = match &tokens[pos] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && is_enum => {
            Kind::Enum(parse_variants(g.stream()))
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            Kind::Named(parse_named_fields(g.stream()))
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("serde stand-in: unsupported type body `{other}`"),
    };

    Input { name, transparent, kind }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Consume attributes (doc comments, `#[default]`, …).
        take_attrs(&tokens, &mut pos, &[]);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde stand-in: expected variant name, found `{other}`"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(other) => {
                panic!("serde stand-in: unsupported token `{other}` after variant {name}")
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = take_attrs(&tokens, &mut pos, &["skip"])[0];
        if matches!(&tokens[pos], TokenTree::Ident(i) if i.to_string() == "pub") {
            pos += 1;
            if matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                pos += 1;
            }
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde stand-in: expected field name, found `{other}`"),
        };
        pos += 1;
        assert!(
            matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde stand-in: expected `:` after field `{name}`"
        );
        pos += 1;
        // Skip the type: consume until a top-level comma. `<`/`>` are plain
        // punctuation in token streams, so track angle-bracket depth.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push((name, skip));
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

/// Derives `serde::Serialize` (and, for transparent newtypes, `serde::JsonKey`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let mut out = String::new();
    match (&parsed.kind, parsed.transparent) {
        (Kind::Tuple(1), true) => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
                 }}\n\
                 impl ::serde::JsonKey for {name} {{\n\
                     fn to_key(&self) -> ::std::string::String {{ ::serde::JsonKey::to_key(&self.0) }}\n\
                     fn from_key(key: &str) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self(::serde::JsonKey::from_key(key)?))\n\
                     }}\n\
                 }}\n"
            ));
        }
        (Kind::Named(fields), false) => {
            let mut body = String::new();
            for (field, skip) in fields {
                if *skip {
                    continue;
                }
                body.push_str(&format!(
                    "__fields.push((\"{field}\".to_string(), ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {body}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            ));
        }
        (Kind::Enum(variants), false) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\n\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantFields::Tuple(count) => {
                        let bindings: Vec<String> =
                            (0..*count).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = bindings
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\n\
                                 \"{vname}\".to_string(),\n\
                                 ::serde::Value::Array(::std::vec![{}]))]),\n",
                            bindings.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let bindings: Vec<String> = fields
                            .iter()
                            .map(|(f, skip)| if *skip { format!("{f}: _") } else { f.clone() })
                            .collect();
                        let mut body = String::new();
                        for (field, skip) in fields {
                            if *skip {
                                continue;
                            }
                            body.push_str(&format!(
                                "__fields.push((\"{field}\".to_string(), ::serde::Serialize::to_value({field})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {body}\
                                 ::serde::Value::Object(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Object(__fields))])\n\
                             }}\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            ));
        }
        _ => panic!("serde stand-in: unsupported shape for Serialize on {name}"),
    }
    out.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let mut out = String::new();
    match (&parsed.kind, parsed.transparent) {
        (Kind::Tuple(1), true) => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))\n\
                     }}\n\
                 }}\n"
            ));
        }
        (Kind::Named(fields), false) => {
            let mut body = String::new();
            for (field, skip) in fields {
                if *skip {
                    body.push_str(&format!("{field}: ::std::default::Default::default(),\n"));
                } else {
                    body.push_str(&format!(
                        "{field}: match value.get_field(\"{field}\") {{\n\
                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(\n\
                                 ::serde::Error::custom(\"missing field `{field}` in {name}\")),\n\
                         }},\n"
                    ));
                }
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {body} }})\n\
                     }}\n\
                 }}\n"
            ));
        }
        (Kind::Enum(variants), false) => {
            let units: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.fields, VariantFields::Unit)).collect();
            let structs: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.fields, VariantFields::Unit)).collect();
            let mut arms = String::new();
            if !units.is_empty() {
                let mut unit_arms = String::new();
                for variant in &units {
                    let vname = &variant.name;
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n"
                ));
            }
            if !structs.is_empty() {
                let mut tag_arms = String::new();
                for variant in &structs {
                    let vname = &variant.name;
                    match &variant.fields {
                        VariantFields::Unit => unreachable!("unit variants filtered out"),
                        VariantFields::Tuple(1) => tag_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\n\
                                 {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantFields::Tuple(count) => {
                            let items: Vec<String> = (0..*count)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            tag_arms.push_str(&format!(
                                "\"{vname}\" => match __inner {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {count} =>\n\
                                         ::std::result::Result::Ok({name}::{vname}({})),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::custom(\n\
                                         \"expected a {count}-element array for {name}::{vname}\")),\n\
                                 }},\n",
                                items.join(", ")
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let mut body = String::new();
                            for (field, skip) in fields {
                                if *skip {
                                    body.push_str(&format!(
                                        "{field}: ::std::default::Default::default(),\n"
                                    ));
                                } else {
                                    body.push_str(&format!(
                                        "{field}: match __inner.get_field(\"{field}\") {{\n\
                                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                                             ::std::option::Option::None => return ::std::result::Result::Err(\n\
                                                 ::serde::Error::custom(\"missing field `{field}` in {name}::{vname}\")),\n\
                                         }},\n"
                                    ));
                                }
                            }
                            tag_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {body} }}),\n"
                            ));
                        }
                    }
                }
                arms.push_str(&format!(
                    "::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                         let (__tag, __inner) = &__tagged[0];\n\
                         match __tag.as_str() {{\n\
                             {tag_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n"
                ));
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             {arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 \"unsupported value shape for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            ));
        }
        _ => panic!("serde stand-in: unsupported shape for Deserialize on {name}"),
    }
    out.parse().expect("generated Deserialize impl must parse")
}
