//! The [`Strategy`] trait and the built-in strategies for ranges and tuples.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A recipe for generating values of an associated type.
///
/// Unlike upstream proptest there is no value *tree* (and hence no
/// shrinking): a strategy simply produces one value per case from the
/// deterministic per-test RNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut ChaCha8Rng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
