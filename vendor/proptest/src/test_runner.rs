//! Test-runner plumbing: configuration, case errors, per-test RNGs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stand-in halves that to keep the
        // graph-building properties fast in CI while still covering a broad
        // input spread.
        ProptestConfig { cases: 128 }
    }
}

/// Failure of a single property case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG for one case of one property: seeded from the test name
/// (FNV-1a) and the case index, so every test gets its own input stream and
/// reruns are reproducible.
pub fn rng_for(test_name: &str, case: u64) -> ChaCha8Rng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
