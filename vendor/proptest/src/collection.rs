//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::hash::Hash;

/// The number of elements a collection strategy may produce: either an exact
/// count or a half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut ChaCha8Rng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `HashSet`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates hash sets whose cardinality is drawn from `size`.
///
/// If the element strategy cannot produce enough distinct values the set is
/// returned smaller rather than looping forever (upstream proptest rejects
/// the case instead).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut ChaCha8Rng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(50) + 50 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
