//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface this workspace uses:
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`]/[`collection::hash_set`], the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header, and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: each property runs a fixed number of cases with
//! inputs drawn from an RNG seeded from the test name (fully deterministic),
//! and there is **no shrinking** — a failing case reports its assertion
//! message only.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The items wildcard-imported by `use proptest::prelude::*` upstream.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each property in the block for `ProptestConfig::cases` deterministic
/// cases. See the crate docs for the supported syntax subset.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::rng_for(stringify!($name), u64::from(__case));
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "property `{}` failed on case {}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
}
