//! Offline stand-in for `rand_chacha`: a ChaCha8-based deterministic RNG.
//!
//! The block function is the real ChaCha8 (4 double-rounds), but
//! `seed_from_u64` expands the seed with SplitMix64 rather than upstream's
//! scheme, so the generated *streams* differ from the real crate. Everything
//! in this workspace only relies on determinism for a fixed seed.

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[4 + 2 * i + 1] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let fold_a = (0..8).fold(0u64, |acc, _| acc ^ a.next_u64().rotate_left(7));
        let fold_b = (0..8).fold(0u64, |acc, _| acc ^ b.next_u64().rotate_left(7));
        assert_ne!(fold_a, fold_b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            assert!((0..=5).contains(&rng.gen_range(0u32..=5)));
        }
    }
}
