//! Offline stand-in for `serde` with a JSON-only data model.
//!
//! The real serde decouples data structures from data formats through the
//! `Serializer`/`Deserializer` traits. This stub collapses that design to the
//! single format the workspace uses (JSON, via the sibling `serde_json` stub):
//! [`Serialize`] converts a value into a [`Value`] tree and [`Deserialize`]
//! reads one back. The derive macros are re-exported from `serde_derive` and
//! support plain structs plus the `#[serde(skip)]` and `#[serde(transparent)]`
//! attributes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped value tree: the intermediate representation between Rust
/// values and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by key. Returns `None` for non-objects.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, found {}", got.type_name()))
}

/// A value that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model representation.
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads a value of `Self` out of the data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// A type usable as a JSON object key (maps serialize keys as strings).
pub trait JsonKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(key: &str) -> Result<Self, Error>;
}

// ---- Primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| unexpected("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| unexpected("integer", value))?;
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|f| f as $t).ok_or_else(|| unexpected("number", value))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

// ---- Container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(Vec::into_boxed_slice)
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(unexpected("object", other)),
        }
    }
}

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        // Deterministic output regardless of hash order.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(unexpected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?,
                        )+);
                        Ok(out)
                    }
                    other => Err(unexpected("array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
}
