//! JSON text format for the offline `serde` stand-in: rendering a
//! `serde::Value` tree to text and parsing it back.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

// ---- Rendering -------------------------------------------------------------

fn render(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; integral floats render
                // without a fraction ("7"), which parses back as an integer and
                // converts losslessly on the way into an f64 field.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a `serde::Value`.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: the next escape must be a
                                // low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&second) {
                                        char::from_u32(
                                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        // Integers that overflow u64/i64 fall back to f64: Rust's f64 Display
        // never uses exponent notation, so values like 1e300 serialize as long
        // digit strings that must still parse.
        let parsed = if is_float {
            text.parse::<f64>().ok().map(Value::Float)
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .ok()
                .map(Value::Int)
                .or_else(|| text.parse::<f64>().ok().map(Value::Float))
        } else {
            text.parse::<u64>()
                .ok()
                .map(Value::UInt)
                .or_else(|| text.parse::<f64>().ok().map(Value::Float))
        };
        parsed.ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Value::Str("a\nbA".into()));
    }

    #[test]
    fn typed_roundtrip() {
        let original: Vec<Option<String>> = vec![Some("x\"y\\z".into()), None, Some("λ".into())];
        let text = to_string(&original).unwrap();
        let restored: Vec<Option<String>> = from_str(&text).unwrap();
        assert_eq!(restored, original);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 7.0, 1e-300, std::f64::consts::PI] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn huge_and_extreme_numbers_roundtrip() {
        // f64 Display never uses exponent notation, so 1e300 serializes as a
        // 301-digit integer string; the parser must fall back to f64.
        for f in [1e300, -1e300, 2f64.powi(64), i64::MIN as f64] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
        let min: i64 = from_str("-9223372036854775808").unwrap();
        assert_eq!(min, i64::MIN);
    }

    #[test]
    fn surrogate_pairs_decode_or_error() {
        assert_eq!(parse("\"\\ud83e\\udd80\"").unwrap(), Value::Str("🦀".into()));
        // A high surrogate not followed by a low surrogate is an error, not a
        // fabricated character.
        assert!(parse("\"\\ud800\\u0041\"").is_err());
        assert!(parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
    }
}
