//! # attributed-community-search
//!
//! A from-scratch Rust reproduction of **“Effective Community Search for Large
//! Attributed Graphs”** (Fang, Cheng, Luo, Hu — PVLDB 9(12), 2016): the
//! attributed community query (ACQ), the CL-tree index, the paper's query
//! algorithms, its baselines and its full experimental evaluation.
//!
//! This crate is a thin façade: it re-exports the workspace crates under one
//! namespace so that applications can depend on a single package.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`graph`] | attributed graph store, keyword interning, subsets, I/O |
//! | [`kcore`] | core decomposition, k-ĉore extraction, core maintenance |
//! | [`unionfind`] | union-find and the Anchored Union-Find |
//! | [`fpm`] | Apriori and FP-Growth frequent-itemset mining |
//! | [`cltree`] | the CL-tree index (basic/advanced construction, maintenance) |
//! | [`acq`] | the ACQ problem, the `basic-g`/`basic-w`/`Inc-S`/`Inc-T`/`Dec` algorithms, variants, and the unified [`Request`](acq::Request)/[`Executor`](acq::Executor) surface served by the owning [`Engine`](acq::Engine) and the batch layer ([`BatchEngine`](acq::exec::BatchEngine)) |
//! | [`baselines`] | Global, Local, CODICIL-style detection, star-pattern GPM |
//! | [`metrics`] | CMF, CPJ, MF and structural cohesion measures; metrics wire shapes |
//! | [`server`] | framed TCP serving front-end: [`Server`](server::Server), transactor write path, [`Client`](server::Client) (see `docs/PROTOCOL.md`) |
//! | [`durable`] | crash-safe delta log, snapshot compaction, [`DurableEngine`](durable::DurableEngine) replay recovery (see `docs/DURABILITY.md`) |
//! | [`datagen`] | synthetic dataset profiles, generator, workloads, case study |
//!
//! ## Quick start
//!
//! Every query kind goes through one door: build a [`Request`](prelude::Request),
//! hand it to an [`Executor`](prelude::Executor), read the
//! [`Response`](prelude::Response).
//!
//! ```
//! use attributed_community_search::prelude::*;
//! use std::sync::Arc;
//!
//! // The running example of the paper (Figure 3).
//! let graph = Arc::new(paper_figure3_graph());
//! let engine = Engine::new(Arc::clone(&graph));
//! let q = graph.vertex_by_label("A").unwrap();
//!
//! // "Find the community of A in which everyone has degree >= 2 and shares
//! //  as many of A's keywords as possible."
//! let response = engine.execute(&Request::community(q).k(2)).unwrap();
//! let ac = &response.communities()[0];
//! assert_eq!(ac.member_names(&graph), vec!["A", "C", "D"]);
//! assert_eq!(ac.label_terms(&graph), vec!["x", "y"]);
//!
//! // The two problem variants are the same request with one more knob.
//! let x = graph.dictionary().get("x").unwrap();
//! let sw = engine.execute(&Request::community(q).k(2).exact_keywords([x])).unwrap();
//! assert_eq!(sw.meta.algorithm, "SW");
//! let swt = engine.execute(&Request::community(q).k(2).keywords([x]).threshold(0.5)).unwrap();
//! assert_eq!(swt.meta.algorithm, "SWT");
//! ```
//!
//! For many queries against one graph, hand the whole slice to
//! [`Executor::execute_batch`](prelude::Executor::execute_batch) — both
//! engines share the index, its core decomposition and an LRU cache across a
//! worker pool (see `ARCHITECTURE.md` for where this layer sits):
//!
//! ```
//! use attributed_community_search::prelude::*;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(paper_figure3_graph());
//! let engine = Engine::builder(Arc::clone(&graph)).threads(2).build();
//! let requests: Vec<Request> = graph
//!     .vertices()
//!     .map(|v| Request::community(v).k(2))
//!     .collect();
//! let responses = engine.execute_batch(&requests); // answers arrive in input order
//! assert_eq!(responses.len(), requests.len());
//! assert!(responses.iter().all(|r| r.is_ok()));
//! ```

#![deny(missing_docs)]

pub use acq_baselines as baselines;
pub use acq_cltree as cltree;
pub use acq_core as acq;
pub use acq_datagen as datagen;
pub use acq_durable as durable;
pub use acq_fpm as fpm;
pub use acq_graph as graph;
pub use acq_kcore as kcore;
pub use acq_metrics as metrics;
pub use acq_server as server;
pub use acq_unionfind as unionfind;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use acq_cltree::{build_advanced, build_basic, ClTree};
    pub use acq_core::exec::{BatchEngine, CacheStats};
    #[allow(deprecated)]
    pub use acq_core::AcqEngine;
    #[allow(deprecated)]
    pub use acq_core::QueryBatch;
    pub use acq_core::{
        AcqAlgorithm, AcqQuery, AcqResult, AttributedCommunity, Engine, EngineBuilder,
        ExecutionMeta, Executor, QueryError, QuerySpec, Request, Response, UpdateReport,
        UpdateStrategy, Variant1Query, Variant2Query,
    };
    pub use acq_durable::{DurableEngine, DurableOptions, RecoveryReport};
    pub use acq_graph::{
        paper_figure3_graph, AppliedDelta, AttributedGraph, GraphBuilder, GraphDelta, KeywordId,
        KeywordSet, VertexId, VertexSubset,
    };
    pub use acq_kcore::{CoreDecomposition, SharedDecomposition};
    pub use acq_metrics::serving::MetricsSnapshot;
    pub use acq_server::{Client, Server, ServerConfig, ServerHandle};
}
